"""Docs-coverage checks: the documentation surface must track the code.

Five subsystems' invariants used to live only in commit messages; PR 5
moved them into ``docs/``.  These checks keep that surface honest:

* every :class:`~repro.core.session.SimulationConfig` field appears in the
  field table of ``docs/api.md`` (adding a config knob without documenting
  it fails CI);
* every benchmark module is mapped in ``docs/benchmarks.md`` (adding a
  benchmark without saying which paper figure/theorem it certifies fails
  CI);
* ``docs/architecture.md`` names every layer of the evaluation stack and
  the bit-identical-trajectory invariant;
* the README documents the config-file workflow (``repro config dump`` +
  ``--config``) and the backend matrix.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.core.session import SimulationConfig

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"


def test_api_doc_tables_cover_every_simulation_config_field():
    api = (DOCS / "api.md").read_text()
    missing = [
        field.name
        for field in dataclasses.fields(SimulationConfig)
        if f"| `{field.name}`" not in api
    ]
    assert not missing, (
        f"SimulationConfig field(s) {missing} are not documented in the "
        "docs/api.md field table (rows look like '| `field` | default | ...')"
    )


def test_benchmarks_doc_maps_every_benchmark_module():
    doc = (DOCS / "benchmarks.md").read_text()
    missing = [
        path.name
        for path in sorted((REPO / "benchmarks").glob("bench_*.py"))
        if path.name not in doc
    ]
    assert not missing, (
        f"benchmark module(s) {missing} are not mapped in docs/benchmarks.md"
    )


def test_architecture_doc_names_the_evaluation_stack():
    doc = (DOCS / "architecture.md").read_text()
    for term in (
        "IncrementalEngine",
        "EvaluatorBackend",
        "ParallelEvaluator",
        "RemoteEvaluator",
        "SharedSnapshot",
        "GameSession",
        "bit-identical",
        "Failure semantics",
        "EndpointSet",
        "batch_timeout",
        "max_retries",
    ):
        assert term in doc, f"docs/architecture.md does not mention {term}"


def test_architecture_doc_specifies_the_degradation_ladder():
    doc = (DOCS / "architecture.md").read_text()
    for term in (
        "Degradation ladder",
        "BreakerPolicy",
        "tripped",
        "probing",
        "recovered",
        "revive()",
        "failover",
        "fallbacks",
        "promotions",
        "breaker_trips",
        "FaultPlan",
        "emergency checkpoint",
        "auth_nonce",
    ):
        assert term in doc, f"docs/architecture.md does not mention {term}"


def test_api_doc_documents_the_degradation_surface():
    api = (DOCS / "api.md").read_text()
    for term in (
        "BreakerPolicy",
        "PoolBrokenError",
        "EvaluatorError",
        "fallbacks",
        "promotions",
        "breaker_trips",
        "endpoint_backoff",
        "FaultPlan",
        "arm_faults",
        "repro chaos",
        "--auth-token",
        "--fault-plan",
    ):
        assert term in api, f"docs/api.md does not mention {term}"


def test_development_doc_documents_every_lint_rule():
    """Every registered lint rule id (and the engine's own ids) has a row
    in the docs/development.md invariant-rules table."""
    from repro.tools.engine import PRAGMA_RULE_ID, SYNTAX_RULE_ID, registered_rules

    doc = (DOCS / "development.md").read_text()
    missing = [
        rule_id
        for rule_id in (*registered_rules(), PRAGMA_RULE_ID, SYNTAX_RULE_ID)
        if f"| `{rule_id}`" not in doc
    ]
    assert not missing, (
        f"lint rule(s) {missing} have no row in the docs/development.md "
        "invariant-rules table"
    )


def test_development_doc_specifies_the_lint_surface():
    doc = (DOCS / "development.md").read_text()
    for term in (
        "repro lint",
        "disable=",
        "bit-identical",
        "static-analysis",
        "mypy",
        "ruff",
        "pyproject.toml",
        "not suppressible",
    ):
        assert term in doc, f"docs/development.md does not mention {term!r}"


def test_lint_checker_is_cross_referenced():
    for path, pointer in (
        (REPO / "README.md", "docs/development.md"),
        (DOCS / "architecture.md", "development.md"),
        (DOCS / "api.md", "development.md"),
    ):
        assert pointer in path.read_text(), f"{path.name} does not link {pointer}"


def test_readme_documents_config_workflow_and_backends():
    readme = (REPO / "README.md").read_text()
    for term in ("config dump", "--config", "Scaling out", "worker serve"):
        assert term in readme, f"README.md does not mention {term!r}"


def test_api_doc_documents_the_backend_surface():
    api = (DOCS / "api.md").read_text()
    for term in ("EvaluatorBackend", "RemoteEvaluator", "worker serve"):
        assert term in api, f"docs/api.md does not mention {term}"


def test_architecture_doc_specifies_checkpoint_format_and_resume():
    doc = (DOCS / "architecture.md").read_text()
    for term in (
        "Checkpoint format & resume semantics",
        "REPROCKP",
        "payload_crc32",
        "CheckpointError",
        "TRAJECTORY_FIELDS",
        "rounds_total",
        "write-then-rename",
        "serialized, not rebuilt",
    ):
        assert term in doc, f"docs/architecture.md does not mention {term}"


def test_api_doc_documents_the_checkpoint_surface():
    api = (DOCS / "api.md").read_text()
    for term in (
        "save_checkpoint",
        "load_checkpoint",
        "resume_dynamics",
        "CheckpointError",
        "TRAJECTORY_FIELDS",
        "repro resume",
        "--checkpoint-every",
    ):
        assert term in api, f"docs/api.md does not mention {term}"
