"""End-to-end integration tests spanning the whole library."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import HostGraph, NetworkCreationGame, StrategyProfile
from repro.analysis import poa_experiment
from repro.constructions import tree_star_lower_bound
from repro.core import (
    best_response_dynamics,
    estimate_poa,
    is_nash_equilibrium,
    metric_poa_upper,
    social_optimum,
)
from repro.core.equilibria import tree_profile_from_host
from repro.metrics import random_euclidean_host, random_tree_host
from repro.reductions.set_cover import (
    SetCoverInstance,
    exact_set_cover,
    tree_set_cover_reduction,
    u_best_response_cover,
)

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


class TestFullPipelines:
    def test_euclidean_pipeline(self):
        """Generate -> optimise -> play -> certify -> compare against the bound."""
        rng = np.random.default_rng(2024)
        host = random_euclidean_host(6, rng=rng)
        alpha = 1.2
        game = NetworkCreationGame(host, alpha)

        opt = social_optimum(game)
        dynamics = best_response_dynamics(game, StrategyProfile.empty(6), max_rounds=50)
        assert dynamics.converged
        equilibrium = dynamics.final_profile
        assert is_nash_equilibrium(game, equilibrium)

        ratio = game.social_cost(equilibrium) / opt.cost
        assert 1.0 - 1e-9 <= ratio <= metric_poa_upper(alpha) + 1e-6

    def test_tree_pipeline_price_of_stability(self):
        """On tree metrics the defining tree is optimal and stable (PoS = 1)."""
        rng = np.random.default_rng(7)
        host = random_tree_host(6, rng=rng)
        game = NetworkCreationGame(host, alpha=2.0)
        tree = tree_profile_from_host(game)
        opt = social_optimum(game)
        assert opt.cost == pytest.approx(game.social_cost(tree))
        assert is_nash_equilibrium(game, tree)

    def test_lower_bound_feeds_poa_estimate(self):
        """Injecting the Theorem 15 equilibrium raises the empirical PoA to its ratio."""
        instance = tree_star_lower_bound(6, 2.0)
        estimate = estimate_poa(
            instance.game,
            num_samples=2,
            extra_equilibria=[instance.equilibrium],
            rng=np.random.default_rng(0),
        )
        assert estimate.price_of_anarchy >= instance.measured_ratio - 1e-9
        assert estimate.price_of_anarchy <= metric_poa_upper(2.0) + 1e-9

    def test_hardness_pipeline(self):
        """Set-cover instance -> gadget -> exact best response -> minimum cover."""
        sc = SetCoverInstance.from_lists(4, [[0, 1], [1, 2], [2, 3]])
        gadget = tree_set_cover_reduction(sc)
        cover = u_best_response_cover(gadget)
        assert len(cover) == len(exact_set_cover(sc))

    def test_experiment_layer_smoke(self):
        summary = poa_experiment("euclidean", 5, 1.0, instances=1, samples_per_instance=2, seed=0)
        assert summary.bound_respected

    def test_public_api_surface(self):
        """The names promised by the README must be importable from the package roots."""
        import repro
        import repro.core as core

        for name in ("HostGraph", "NetworkCreationGame", "StrategyProfile", "ModelVariant"):
            assert hasattr(repro, name)
        for name in (
            "best_response_exact",
            "is_nash_equilibrium",
            "social_optimum",
            "run_dynamics",
            "estimate_poa",
            "metric_poa_upper",
        ):
            assert hasattr(core, name)


class TestExamples:
    """Every example script must run to completion."""

    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "tree_metric_peering.py", "hardness_gadgets.py"],
    )
    def test_example_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()

    def test_examples_exist(self):
        expected = {
            "quickstart.py",
            "fiber_backbone_design.py",
            "tree_metric_peering.py",
            "price_of_anarchy_sweep.py",
            "hardness_gadgets.py",
        }
        present = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert expected <= present
