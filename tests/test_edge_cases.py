"""Edge-case and failure-injection tests: degenerate hosts, extreme alpha, tiny games."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions.common import LowerBoundInstance
from repro.constructions import tree_star_lower_bound
from repro.core.best_response import best_response_exact
from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_nash_equilibrium
from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.poa import estimate_poa
from repro.core.social_optimum import exact_social_optimum, social_optimum
from repro.core.spanner import spanner_stretch
from repro.core.strategy import StrategyProfile


class TestTinyGames:
    def test_two_agents(self):
        host = HostGraph.from_matrix([[0.0, 3.0], [3.0, 0.0]])
        game = NetworkCreationGame(host, alpha=2.0)
        opt = exact_social_optimum(game)
        # the only connected network is the single edge
        assert opt.profile.num_edges() == 1
        assert opt.cost == pytest.approx(2.0 * 3.0 + 2 * 3.0)
        result = best_response_dynamics(game, StrategyProfile.empty(2), max_rounds=10)
        assert result.converged
        assert is_nash_equilibrium(game, result.final_profile)

    def test_single_agent(self):
        host = HostGraph.unit(1)
        game = NetworkCreationGame(host, alpha=1.0)
        profile = StrategyProfile.empty(1)
        assert game.social_cost(profile) == 0.0
        assert is_nash_equilibrium(game, profile)

    def test_two_agent_equilibrium_owner_does_not_drop_edge(self):
        host = HostGraph.from_matrix([[0.0, 1.0], [1.0, 0.0]])
        game = NetworkCreationGame(host, alpha=5.0)
        profile = StrategyProfile.from_owned_edges(2, [(0, 1)])
        # dropping the edge would disconnect agent 0 (infinite cost), so it is a NE
        assert is_nash_equilibrium(game, profile)


class TestExtremeAlpha:
    def test_alpha_zero_optimum_is_complete_for_metric_host(self, small_euclidean_game):
        game = small_euclidean_game.with_alpha(0.0)
        opt = exact_social_optimum(game)
        # with free edges the complete network minimises all distances
        assert opt.cost == pytest.approx(game.social_cost(StrategyProfile.complete(5)))

    def test_alpha_zero_best_response_buys_everything_useful(self, small_euclidean_game):
        game = small_euclidean_game.with_alpha(0.0)
        result = best_response_exact(game, StrategyProfile.empty(5), 0)
        # free edges: buying a direct edge to every node is (weakly) optimal
        assert result.cost == pytest.approx(game.host.weights[0].sum())

    def test_huge_alpha_equilibria_are_trees(self, small_euclidean_game):
        game = small_euclidean_game.with_alpha(1e3)
        result = best_response_dynamics(game, StrategyProfile.star(5, center=0), max_rounds=30)
        assert result.converged
        profile = result.final_profile
        assert profile.num_edges() == 4  # spanning tree
        assert is_nash_equilibrium(game, profile)

    def test_huge_alpha_optimum_is_mst_cost(self, small_euclidean_game):
        from repro.core.social_optimum import mst_profile

        game = small_euclidean_game.with_alpha(1e4)
        opt = exact_social_optimum(game)
        mst = mst_profile(game)
        # edge weight dominates: the optimum uses an MST edge set
        opt_weight = sum(game.host.weight(u, v) for u, v in opt.profile.edges())
        mst_weight = sum(game.host.weight(u, v) for u, v in mst.edges())
        assert opt_weight == pytest.approx(mst_weight)


class TestDegenerateGeometry:
    def test_duplicate_points_give_zero_weight_edges(self):
        points = np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]])
        host = HostGraph.from_points(points)
        assert host.weight(0, 1) == 0.0
        game = NetworkCreationGame(host, alpha=1.0)
        opt = exact_social_optimum(game)
        assert np.isfinite(opt.cost)
        assert game.is_connected(opt.profile)

    def test_collinear_points_form_tree_metric(self):
        host = HostGraph.from_points(np.array([[0.0], [1.0], [3.0], [7.0]]), p=2)
        assert host.is_tree_metric()
        game = NetworkCreationGame(host, alpha=2.0)
        path = StrategyProfile.path([0, 1, 2, 3], 4)
        assert is_nash_equilibrium(game, path)

    def test_zero_weight_host_everything_is_free(self):
        host = HostGraph.from_matrix(np.zeros((4, 4)))
        game = NetworkCreationGame(host, alpha=3.0)
        profile = StrategyProfile.star(4, center=0)
        assert game.social_cost(profile) == 0.0
        assert spanner_stretch(host, profile) == 1.0
        estimate = estimate_poa(game, num_samples=1, rng=np.random.default_rng(0))
        assert np.isnan(estimate.price_of_anarchy)  # 0/0 ratios are reported as NaN

    def test_one_infinity_unreachable_pairs(self):
        # only a path is allowed: 0-1-2; agent 0 can never buy a direct edge to 2
        host = HostGraph.one_infinity([(0, 1), (1, 2)], 3)
        game = NetworkCreationGame(host, alpha=1.0)
        opt = social_optimum(game, method="local_search")
        assert game.is_connected(opt.profile)
        assert set(opt.profile.edges()) == {(0, 1), (1, 2)}


class TestLowerBoundInstanceDataclass:
    def test_cost_properties(self):
        inst = tree_star_lower_bound(5, 2.0)
        assert isinstance(inst, LowerBoundInstance)
        assert inst.equilibrium_cost == pytest.approx(
            inst.game.social_cost(inst.equilibrium)
        )
        assert inst.optimum_cost == pytest.approx(inst.game.social_cost(inst.optimum))
        assert inst.measured_ratio == pytest.approx(
            inst.equilibrium_cost / inst.optimum_cost
        )

    def test_name_is_propagated(self):
        assert tree_star_lower_bound(5, 2.0).name == "thm15_tree_star"
