"""Golden regression tests: frozen paper numbers the engines must reproduce.

Engine refactors (and in particular the incremental distance engine) must
never silently change the numbers the reproduction derives from the paper's
constructions.  This module freezes the social costs, best-response costs
and PoA ratios of the key gadgets — the Figure 5 / Figure 8 best-response
cycle hosts, the Theorem 15 tree-star lower bound and the Theorem 8 1-2
clique-of-stars lower bound — as literal constants.  Every value was
computed with the seed implementation (``best_response_exact`` + full
Floyd–Warshall) and is asserted against both the exact and the incremental
engine, so any divergence between engines or drift across refactors fails
loudly here.
"""

from __future__ import annotations

import pytest

from repro.constructions.br_cycles import (
    FIG5_TREE_WEIGHTS,
    FIG8_POSITIONS,
    fig5_tree_cycle_host,
    fig8_geometric_cycle_host,
)
from repro.constructions.one_two_lower_bound import clique_of_stars_lower_bound
from repro.constructions.tree_star_lower_bound import tree_star_lower_bound
from repro.core import IncrementalEngine, StrategyProfile, best_response_exact

EXACT = pytest.approx


class TestTreeStarLowerBound:
    """Theorem 15 (Fig. 6): equilibrium star vs optimum star, exact ratios."""

    @pytest.mark.parametrize(
        "n, alpha, eq_cost, opt_cost, ratio",
        [
            (8, 2.0, 208.0, 112.0, 13.0 / 7.0),
            (12, 4.0, 416.0, 156.0, 8.0 / 3.0),
        ],
    )
    def test_frozen_costs_and_ratio(self, n, alpha, eq_cost, opt_cost, ratio):
        inst = tree_star_lower_bound(n, alpha)
        assert inst.equilibrium_cost == EXACT(eq_cost, abs=1e-9)
        assert inst.optimum_cost == EXACT(opt_cost, abs=1e-9)
        assert inst.measured_ratio == EXACT(ratio, abs=1e-12)
        assert inst.claimed_ratio == EXACT(ratio, abs=1e-12)

    def test_incremental_engine_reproduces_costs(self):
        inst = tree_star_lower_bound(8, 2.0)
        engine = IncrementalEngine(inst.game, inst.equilibrium)
        assert engine.social_cost() == EXACT(208.0, abs=1e-9)
        engine = IncrementalEngine(inst.game, inst.optimum)
        assert engine.social_cost() == EXACT(112.0, abs=1e-9)


class TestOneTwoLowerBound:
    """Theorem 8 (Fig. 3): clique-of-stars gadget, both alpha flavours."""

    @pytest.mark.parametrize(
        "N, alpha, eq_cost, opt_cost, ratio",
        [
            (2, 1.0, 85.0, 73.0, 85.0 / 73.0),
            (2, 0.75, 83.25, 81.25, 83.25 / 81.25),
            (3, 1.0, 351.0, 288.0, 1.21875),
        ],
    )
    def test_frozen_costs_and_ratio(self, N, alpha, eq_cost, opt_cost, ratio):
        inst = clique_of_stars_lower_bound(N, alpha)
        assert inst.equilibrium_cost == EXACT(eq_cost, abs=1e-9)
        assert inst.optimum_cost == EXACT(opt_cost, abs=1e-9)
        assert inst.measured_ratio == EXACT(ratio, abs=1e-12)


class TestFig5TreeCycleHost:
    """Theorem 14 (Fig. 5): the tree host carrying the published weight multiset."""

    def test_frozen_host_geometry(self):
        game = fig5_tree_cycle_host(alpha=1.0)
        assert sorted(FIG5_TREE_WEIGHTS) == [2.0, 2.0, 3.0, 5.0, 7.0, 9.0, 10.0, 11.0, 12.0]
        assert game.host.total_weight() == EXACT(725.0, abs=1e-9)

    def test_frozen_star_social_cost(self):
        game = fig5_tree_cycle_host(alpha=1.0)
        star = StrategyProfile.star(10, center=0)
        assert game.social_cost(star) == EXACT(2755.0, abs=1e-9)
        assert IncrementalEngine(game, star).social_cost() == EXACT(2755.0, abs=1e-9)

    def test_frozen_best_response_on_star(self):
        game = fig5_tree_cycle_host(alpha=1.0)
        star = StrategyProfile.star(10, center=0)
        exact = best_response_exact(game, star, 3)
        assert exact.cost == EXACT(156.0, abs=1e-9)
        assert sorted(exact.strategy) == [2, 4, 6, 7, 8, 9]
        incremental = IncrementalEngine(game, star).best_response(3)
        assert incremental.cost == EXACT(156.0, abs=1e-9)
        assert incremental.strategy == exact.strategy


class TestFig8GeometricCycleHost:
    """Theorem 17 (Fig. 8): the published R^2/1-norm coordinates."""

    def test_frozen_host_geometry(self):
        game = fig8_geometric_cycle_host(alpha=1.0)
        assert len(FIG8_POSITIONS) == 10
        assert game.host.total_weight() == EXACT(154.0, abs=1e-9)

    def test_frozen_star_social_cost(self):
        game = fig8_geometric_cycle_host(alpha=1.0)
        star = StrategyProfile.star(10, center=0)
        assert game.social_cost(star) == EXACT(608.0, abs=1e-9)
        assert IncrementalEngine(game, star).social_cost() == EXACT(608.0, abs=1e-9)

    def test_frozen_best_response_on_star(self):
        game = fig8_geometric_cycle_host(alpha=1.0)
        star = StrategyProfile.star(10, center=0)
        exact = best_response_exact(game, star, 4)
        assert exact.cost == EXACT(41.0, abs=1e-9)
        assert sorted(exact.strategy) == [1, 2, 3, 8, 9]
        incremental = IncrementalEngine(game, star).best_response(4)
        assert incremental.cost == EXACT(41.0, abs=1e-9)
        assert incremental.strategy == exact.strategy
