"""Tests for spanner utilities (Lemmas 1-2, Theorem 5 machinery)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.spanner import (
    greedy_spanner,
    is_k_spanner,
    minimum_weight_spanner,
    prune_spanner,
    spanner_stretch,
)
from repro.core.strategy import StrategyProfile


class TestStretch:
    def test_complete_graph_has_stretch_one(self, small_euclidean_game):
        host = small_euclidean_game.host
        assert spanner_stretch(host, StrategyProfile.complete(5)) == pytest.approx(1.0)

    def test_star_stretch_on_unit_host(self):
        host = HostGraph.unit(5)
        star = StrategyProfile.star(5, center=0)
        assert spanner_stretch(host, star) == pytest.approx(2.0)

    def test_disconnected_subgraph_has_infinite_stretch(self):
        host = HostGraph.unit(4)
        profile = StrategyProfile.from_undirected_edges(4, [(0, 1)])
        assert spanner_stretch(host, profile) == np.inf

    def test_accepts_edge_lists_and_adjacency(self):
        host = HostGraph.unit(4)
        edges = [(0, 1), (1, 2), (2, 3)]
        adjacency = np.zeros((4, 4), dtype=bool)
        for u, v in edges:
            adjacency[u, v] = adjacency[v, u] = True
        assert spanner_stretch(host, edges) == spanner_stretch(host, adjacency)

    def test_single_node(self):
        host = HostGraph.unit(1)
        assert spanner_stretch(host, StrategyProfile.empty(1)) == pytest.approx(1.0)

    def test_is_k_spanner_threshold(self):
        host = HostGraph.unit(5)
        star = StrategyProfile.star(5, center=0)
        assert is_k_spanner(host, star, 2.0)
        assert not is_k_spanner(host, star, 1.5)


class TestGreedySpanner:
    @pytest.mark.parametrize("k", [1.5, 2.0, 3.0])
    def test_result_is_valid_spanner(self, k, rng):
        host = HostGraph.from_points(rng.random((7, 2)))
        result = greedy_spanner(host, k)
        assert result.stretch <= k + 1e-9
        assert is_k_spanner(host, result.edges, k)

    def test_k_one_returns_all_shortest_path_edges(self, rng):
        host = HostGraph.from_points(rng.random((5, 2)))
        result = greedy_spanner(host, 1.0)
        assert result.stretch == pytest.approx(1.0)

    def test_larger_k_never_heavier(self, rng):
        host = HostGraph.from_points(rng.random((7, 2)))
        w2 = greedy_spanner(host, 2.0).total_weight
        w4 = greedy_spanner(host, 4.0).total_weight
        assert w4 <= w2 + 1e-9


class TestPruneAndMinimumWeight:
    def test_prune_keeps_spanner_property(self, rng):
        host = HostGraph.from_points(rng.random((6, 2)))
        pruned = prune_spanner(host, StrategyProfile.complete(6).edges(), 2.0)
        assert pruned.stretch <= 2.0 + 1e-9

    def test_prune_never_heavier_than_input(self, rng):
        host = HostGraph.from_points(rng.random((6, 2)))
        full_weight = sum(host.weight(u, v) for u, v in StrategyProfile.complete(6).edges())
        pruned = prune_spanner(host, StrategyProfile.complete(6).edges(), 2.0)
        assert pruned.total_weight <= full_weight + 1e-9

    def test_minimum_weight_spanner_exact_small(self):
        host = HostGraph.one_two([(0, 1), (1, 2), (2, 3)], 4)
        result = minimum_weight_spanner(host, 1.5)
        assert result.stretch <= 1.5 + 1e-9
        # Lemma 5: a minimum-weight 3/2-spanner of a 1-2 host contains all 1-edges
        edge_set = set(result.edges)
        for e in [(0, 1), (1, 2), (2, 3)]:
            assert e in edge_set or (e[1], e[0]) in edge_set

    def test_minimum_weight_not_heavier_than_greedy(self, rng):
        host = HostGraph.from_points(rng.random((5, 2)))
        exact = minimum_weight_spanner(host, 2.0)
        greedy = greedy_spanner(host, 2.0)
        assert exact.total_weight <= greedy.total_weight + 1e-9

    def test_to_profile(self, rng):
        host = HostGraph.from_points(rng.random((5, 2)))
        result = greedy_spanner(host, 2.0)
        profile = result.to_profile(5)
        assert profile.num_edges() == len(result.edges)


class TestLemma1:
    """Lemma 1: every Add-only Equilibrium is an (alpha + 1)-spanner of the host."""

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000), alpha=st.floats(min_value=0.2, max_value=4.0))
    def test_equilibria_are_spanners(self, seed, alpha):
        from repro.core.dynamics import best_response_dynamics
        from repro.core.equilibria import is_add_only_equilibrium

        rng = np.random.default_rng(seed)
        host = HostGraph.from_points(rng.random((5, 2)))
        game = NetworkCreationGame(host, alpha)
        result = best_response_dynamics(game, StrategyProfile.empty(5), max_rounds=30)
        if not result.converged:
            return
        profile = result.final_profile
        assert is_add_only_equilibrium(game, profile)
        assert is_k_spanner(host, profile, alpha + 1.0)


class TestTheorem5Machinery:
    def test_min_weight_three_halves_spanner_orientable_to_ne(self):
        """Thm. 5: for 1-2 hosts with 1/2 <= alpha <= 1 a minimum-weight 3/2-spanner
        admits an ownership assignment that is a Nash equilibrium."""
        from repro.constructions.ownership import find_equilibrium_orientation

        rng = np.random.default_rng(8)
        draws = np.triu(rng.random((5, 5)) < 0.5, k=1)
        ones = [(int(u), int(v)) for u, v in zip(*np.nonzero(draws))]
        host = HostGraph.one_two(ones, 5)
        spanner = minimum_weight_spanner(host, 1.5)
        game = NetworkCreationGame(host, alpha=0.75)
        oriented = find_equilibrium_orientation(game, list(spanner.edges), notion="nash")
        assert oriented is not None
