"""Tests for random host-graph generators and metric validation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.host_graph import ModelVariant
from repro.metrics import (
    is_metric_matrix,
    nearest_metric_repair,
    random_euclidean_host,
    random_general_host,
    random_metric_host,
    random_one_infinity_host,
    random_one_two_host,
    random_tree_host,
    triangle_violations,
    unit_host,
)


class TestGenerators:
    def test_unit_host_is_ncg(self):
        assert unit_host(5).classify() is ModelVariant.NCG

    def test_one_two_host_weights(self, rng):
        host = random_one_two_host(8, one_probability=0.5, rng=rng)
        off_diag = host.weights[~np.eye(8, dtype=bool)]
        assert set(np.unique(off_diag)) <= {1.0, 2.0}
        assert host.classify() in (ModelVariant.ONE_TWO, ModelVariant.NCG)

    def test_one_two_probability_extremes(self, rng):
        all_ones = random_one_two_host(6, one_probability=1.0, rng=rng)
        assert all_ones.classify() is ModelVariant.NCG
        all_twos = random_one_two_host(6, one_probability=0.0, rng=rng)
        off_diag = all_twos.weights[~np.eye(6, dtype=bool)]
        assert np.all(off_diag == 2.0)

    def test_one_two_invalid_probability(self, rng):
        with pytest.raises(ValueError):
            random_one_two_host(5, one_probability=1.5, rng=rng)

    def test_one_infinity_host_is_connected_support(self, rng):
        host = random_one_infinity_host(8, edge_probability=0.1, rng=rng)
        assert host.classify() is ModelVariant.ONE_INFINITY
        # the finite support must connect all nodes (a spanning tree is embedded)
        assert np.all(np.isfinite(host.host_distances()))

    def test_tree_host(self, rng):
        host = random_tree_host(7, rng=rng)
        assert host.tree_edges is not None
        assert len(host.tree_edges) == 6
        assert host.is_metric()
        assert host.is_tree_metric()

    def test_tree_host_single_node(self, rng):
        host = random_tree_host(1, rng=rng)
        assert host.n == 1

    def test_euclidean_host(self, rng):
        host = random_euclidean_host(6, dimension=3, p=2, rng=rng)
        assert host.is_metric()
        assert host.points.shape == (6, 3)

    def test_metric_host(self, rng):
        host = random_metric_host(7, rng=rng)
        assert host.is_metric()

    def test_general_host_may_violate_triangle_inequality(self):
        rng = np.random.default_rng(0)
        violations_seen = False
        for _ in range(5):
            host = random_general_host(6, weight_low=0.1, weight_high=5.0, rng=rng)
            if not host.is_metric():
                violations_seen = True
                break
        assert violations_seen

    def test_generators_are_reproducible(self):
        a = random_euclidean_host(5, rng=np.random.default_rng(7))
        b = random_euclidean_host(5, rng=np.random.default_rng(7))
        assert a == b

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=2, max_value=10), seed=st.integers(0, 10_000))
    def test_all_generators_produce_valid_hosts(self, n, seed):
        rng = np.random.default_rng(seed)
        for generator in (
            lambda: random_one_two_host(n, rng=rng),
            lambda: random_tree_host(n, rng=rng),
            lambda: random_euclidean_host(n, rng=rng),
            lambda: random_metric_host(n, rng=rng),
            lambda: random_general_host(n, rng=rng),
        ):
            host = generator()
            assert host.n == n
            assert np.all(np.diag(host.weights) == 0.0)
            finite = host.weights[np.isfinite(host.weights)]
            assert np.all(finite >= 0.0)


class TestValidation:
    def test_is_metric_matrix(self):
        good = np.array([[0.0, 1.0, 1.5], [1.0, 0.0, 1.2], [1.5, 1.2, 0.0]])
        assert is_metric_matrix(good)
        bad = np.array([[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        assert not is_metric_matrix(bad)

    def test_is_metric_matrix_rejects_asymmetric_and_nonsquare(self):
        assert not is_metric_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert not is_metric_matrix(np.zeros((2, 3)))
        assert not is_metric_matrix(np.array([[0.0, np.inf], [np.inf, 0.0]]))

    def test_triangle_violations_reported(self):
        bad = np.array([[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        violations = triangle_violations(bad)
        assert len(violations) == 1

    def test_nearest_metric_repair(self):
        bad = np.array([[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        repaired = nearest_metric_repair(bad)
        assert is_metric_matrix(repaired)
        assert np.all(repaired <= bad + 1e-12)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=2, max_value=8), seed=st.integers(0, 10_000))
    def test_repair_is_idempotent(self, n, seed):
        rng = np.random.default_rng(seed)
        w = rng.uniform(0.1, 5.0, size=(n, n))
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0.0)
        once = nearest_metric_repair(w)
        twice = nearest_metric_repair(once)
        assert np.allclose(once, twice)
