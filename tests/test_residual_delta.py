"""Delta-codec certification: the sparse residual transport for n >= 1000.

:mod:`repro.core.residual_delta` encodes a residual distance matrix as
``(changed row index set, packed changed rows)`` against a base snapshot,
and both transports — the shared-memory slot banks and the protocol-4
``delta_batch`` wire frames — ship that encoding verbatim.  This battery
certifies the layers bottom-up:

* **codec** — encode → decode is bit-exact for randomized symmetric
  matrices and row subsets (empty deltas, all-row deltas, ``inf`` rows,
  n in {1, 2, 3, large}), re-encoding is byte-stable, and the changed-row
  auto-detection returns a vertex cover (one index for a symmetric
  row/column write — the naive per-row test would return nearly all of
  them);

* **golden layout** — the packed byte layout and the length-prefixed wire
  frame wrapping it are pinned byte-for-byte as literals, so any codec
  change that silently reshapes the wire format fails here first;

* **row view** — :class:`~repro.core.residual_delta.DeltaResidual` serves
  every row bit-identically to the dense matrix (scalar, negative and
  fancy indexing), and ``score_response`` over the view equals the dense
  result field-for-field;

* **cross-oracle sweep** — ``residual_encoding="delta"`` replays the exact
  trajectory *and* EngineStats of ``"dense"`` across model variants,
  schedules and the serial/pool/remote backends, while shipping no more
  bytes;

* **chaos** — a worker dropped mid-frame while a delta batch is partially
  on the wire (``hang_mid_frame``) costs a deadline and a shard
  re-dispatch, never a trajectory bit.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
import pytest

from repro.core import GameSession, SimulationConfig, run_dynamics
from repro.core.best_response import score_response
from repro.core.faults import Fault, FaultPlan
from repro.core.parallel import ParallelEvaluator
from repro.core.remote import _LEN, _reap_processes, spawn_local_worker
from repro.core.residual_delta import (
    DeltaResidual,
    ResidualDelta,
    changed_rows,
    decode_delta,
    encode_delta,
    pack_delta,
    packed_size,
    unpack_delta,
)
from test_parallel_evaluator import (
    _assert_identical_runs,
    _random_game,
    _random_profile,
)

INF = float("inf")


def _random_symmetric(n, rng, inf_frac=0.0):
    """A random symmetric matrix with zero diagonal, optionally inf pairs."""
    m = rng.uniform(0.5, 9.5, size=(n, n))
    m = (m + m.T) / 2.0
    if inf_frac and n > 1:
        mask = np.triu(rng.random((n, n)) < inf_frac, k=1)
        m[mask] = INF
        m[mask.T] = INF
    np.fill_diagonal(m, 0.0)
    return m


def _perturb_rows(base, rows, rng):
    """A symmetric copy of ``base`` rewritten on the given row/column set."""
    m = base.copy()
    for i in rows:
        fresh = rng.uniform(10.0, 20.0, size=m.shape[0])
        m[i, :] = fresh
        m[:, i] = fresh
        m[i, i] = 0.0
    # Re-symmetrize the rows x rows block (later rows overwrote earlier).
    for i in rows:
        for j in rows:
            m[j, i] = m[i, j]
    return m


def _spawn_fleet(plan=None, count=2):
    processes, endpoints = [], []
    for index in range(count):
        process, endpoint = spawn_local_worker(fault_plan=plan, worker_index=index)
        processes.append(process)
        endpoints.append(endpoint)
    return processes, endpoints


# ----------------------------------------------------------------------
# Codec: encode -> decode round trips
# ----------------------------------------------------------------------
def test_roundtrip_randomized_rows_and_sizes(property_budget):
    """decode(encode(m)) == m bit-for-bit over random matrices and row sets."""
    rng = np.random.default_rng(zlib.crc32(b"delta-roundtrip") % 2**32)
    trials = max(4, property_budget)
    for trial in range(trials):
        n = int(rng.choice([1, 2, 3, 5, 9, 17, 40]))
        base = _random_symmetric(n, rng, inf_frac=0.15 if trial % 3 else 0.0)
        k = int(rng.integers(0, n + 1))
        rows = sorted(rng.choice(n, size=k, replace=False)) if k else []
        matrix = _perturb_rows(base, rows, rng)
        for explicit in (None, rows):
            delta = encode_delta(base, matrix, explicit)
            out = decode_delta(base, delta)
            assert out.dtype == np.float64
            assert np.array_equal(out, matrix), (n, rows, explicit)
            # The packed form round-trips through bytes identically too.
            rehydrated = unpack_delta(pack_delta(delta), n)
            assert np.array_equal(decode_delta(base, rehydrated), matrix)


def test_empty_delta_encodes_identity():
    rng = np.random.default_rng(3)
    base = _random_symmetric(6, rng)
    delta = encode_delta(base, base)
    assert delta.num_rows == 0
    assert delta.nbytes == packed_size(0, 6) == 8
    assert pack_delta(delta) == b"\x00" * 8
    assert np.array_equal(decode_delta(base, delta), base)


def test_all_rows_delta_round_trips():
    rng = np.random.default_rng(5)
    base = _random_symmetric(7, rng)
    matrix = _random_symmetric(7, rng)
    delta = encode_delta(base, matrix, rows=range(7))
    assert np.array_equal(decode_delta(base, delta), matrix)
    assert delta.nbytes == packed_size(delta.num_rows, 7)


def test_inf_entries_never_register_as_changed():
    """inf != inf is False: unreachable pairs shared with the base drop out."""
    base = np.array(
        [
            [0.0, 1.0, INF],
            [1.0, 0.0, INF],
            [INF, INF, 0.0],
        ]
    )
    assert changed_rows(base, base.copy()).size == 0
    # Row 2 becomes reachable: exactly one cover index, served exactly.
    matrix = np.array(
        [
            [0.0, 1.0, 4.0],
            [1.0, 0.0, 5.0],
            [4.0, 5.0, 0.0],
        ]
    )
    delta = encode_delta(base, matrix)
    assert delta.rows.tolist() == [2]
    assert np.array_equal(decode_delta(base, delta), matrix)
    # And the reverse direction carries inf inside the packed rows.
    back = encode_delta(matrix, base)
    assert back.rows.tolist() == [2]
    assert np.array_equal(decode_delta(matrix, back), base)


def test_changed_rows_is_a_cover_not_a_naive_row_scan():
    """A symmetric row/column write yields ONE cover index, not n rows."""
    rng = np.random.default_rng(11)
    n = 12
    base = _random_symmetric(n, rng)
    matrix = _perturb_rows(base, [4], rng)
    # Column 4 of every row changed, so the naive per-row test marks all 12.
    naive = np.flatnonzero((matrix != base).any(axis=1))
    assert naive.size == n
    assert changed_rows(base, matrix).tolist() == [4]


def test_cover_survives_bit_asymmetric_base():
    """Ulp-level base asymmetry must not blow up the cover (or break bits).

    A solver's all-pairs output can carry last-ulp asymmetry
    (``base[i, j] != base[j, i]``): a symmetric row/column rewrite of such a
    base then yields an *asymmetric* raw change mask — one changed entry in
    row ``u`` but ``n - 1`` in column ``u`` — which drowned the pre-fix
    greedy cover in degree-one rows.  The symmetrized cover must recover
    the single index, and decode/view must stay bit-exact regardless.
    """
    rng = np.random.default_rng(23)
    n = 40
    base = _random_symmetric(n, rng)
    noisy = rng.random((n, n)) < 0.5
    np.fill_diagonal(noisy, False)
    base[noisy] = np.nextafter(base[noisy], INF)  # asymmetric last-ulp noise
    assert not np.array_equal(base, base.T)
    matrix = _perturb_rows(base, [7], rng)
    assert changed_rows(base, matrix).tolist() == [7]
    delta = encode_delta(base, matrix)
    assert delta.rows.tolist() == [7]
    assert np.array_equal(decode_delta(base, delta), matrix)
    view = DeltaResidual(base, delta)
    for i in range(n):
        assert np.array_equal(view[i], matrix[i]), i


def test_fully_asymmetric_matrices_still_decode_exactly():
    """No symmetry at all: the row set grows until decoding is verbatim."""
    rng = np.random.default_rng(29)
    base = rng.random((6, 6))
    matrix = rng.random((6, 6))
    delta = encode_delta(base, matrix)
    assert delta.rows.tolist() == list(range(6))  # closure reached all rows
    assert np.array_equal(decode_delta(base, delta), matrix)
    view = DeltaResidual(base, delta)
    assert np.array_equal(view[np.arange(6)], matrix)


def test_reencoding_is_byte_stable():
    """Same matrices -> same packed bytes, however the row set is supplied."""
    rng = np.random.default_rng(13)
    base = _random_symmetric(9, rng)
    matrix = _perturb_rows(base, [2, 6], rng)
    reference = pack_delta(encode_delta(base, matrix))
    assert pack_delta(encode_delta(base, matrix)) == reference
    # Unsorted, duplicated explicit rows normalize to the canonical form.
    assert pack_delta(encode_delta(base, matrix, rows=[6, 2, 2])) == reference


def test_codec_validation_rejects_malformed_input():
    rng = np.random.default_rng(17)
    base = _random_symmetric(4, rng)
    with pytest.raises(ValueError, match="square"):
        encode_delta(base, np.zeros((4, 3)))
    with pytest.raises(ValueError, match="shape mismatch"):
        encode_delta(base, _random_symmetric(5, rng))
    with pytest.raises(ValueError, match="out of range"):
        encode_delta(base, base, rows=[7])
    with pytest.raises(ValueError, match="strictly increasing"):
        ResidualDelta(rows=np.array([2, 2]), data=np.zeros((2, 4)))
    with pytest.raises(ValueError, match="too short"):
        unpack_delta(b"\x00", 4)
    payload = pack_delta(encode_delta(base, _perturb_rows(base, [1], rng)))
    with pytest.raises(ValueError, match="mis-sized"):
        unpack_delta(payload + b"\x00", 4)
    with pytest.raises(ValueError, match="mis-sized"):
        unpack_delta(payload, 5)


# ----------------------------------------------------------------------
# Golden layout: the packed bytes and the wire frame, pinned as literals
# ----------------------------------------------------------------------
def test_golden_packed_delta_layout():
    """The transport byte layout, frozen: count u64 | rows i64 | data f64."""
    base = np.array(
        [
            [0.0, 2.0, 3.0],
            [2.0, 0.0, 6.0],
            [3.0, 6.0, 0.0],
        ]
    )
    matrix = np.array(
        [
            [0.0, 7.5, 3.0],
            [7.5, 0.0, INF],
            [3.0, INF, 0.0],
        ]
    )
    delta = encode_delta(base, matrix)
    assert delta.rows.tolist() == [1]
    payload = pack_delta(delta)
    golden = (
        b"\x01\x00\x00\x00\x00\x00\x00\x00"  # k = 1 rows, little-endian u64
        b"\x01\x00\x00\x00\x00\x00\x00\x00"  # row index 1, little-endian i64
        b"\x00\x00\x00\x00\x00\x00\x1e\x40"  # matrix[1, 0] = 7.5
        b"\x00\x00\x00\x00\x00\x00\x00\x00"  # matrix[1, 1] = 0.0
        b"\x00\x00\x00\x00\x00\x00\xf0\x7f"  # matrix[1, 2] = inf
    )
    assert payload == golden
    assert len(payload) == packed_size(1, 3) == 40
    rehydrated = unpack_delta(golden, 3)
    assert np.array_equal(decode_delta(base, rehydrated), matrix)


def test_golden_protocol4_delta_frame():
    """A delta_batch residual frame on the wire: !Q length prefix + payload.

    The server validates the frame length against ``packed_size(rows, n)``
    from the header descriptor, so the prefix, the payload layout and the
    size formula are one contract — pinned here byte-for-byte.
    """
    import socket

    base = np.array([[0.0, 2.0], [2.0, 0.0]])
    matrix = np.array([[0.0, 5.0], [5.0, 0.0]])
    payload = pack_delta(encode_delta(base, matrix))
    client, server = socket.socketpair()
    try:
        from repro.core.remote import _recv_frame, _send_frame

        sent = _send_frame(client, payload)
        raw = b""
        while len(raw) < sent:
            raw += server.recv(4096)
    finally:
        client.close()
    golden = (
        b"\x00\x00\x00\x00\x00\x00\x00\x20"  # frame length 32, network-order u64
        b"\x01\x00\x00\x00\x00\x00\x00\x00"  # k = 1
        b"\x00\x00\x00\x00\x00\x00\x00\x00"  # row index 0
        b"\x00\x00\x00\x00\x00\x00\x00\x00"  # matrix[0, 0] = 0.0
        b"\x00\x00\x00\x00\x00\x00\x14\x40"  # matrix[0, 1] = 5.0
    )
    try:
        assert raw == golden
        assert sent == _LEN.size + packed_size(1, 2)
        # And the receiving half parses the exact same bytes back.
        client2, server2 = socket.socketpair()
        try:
            server2.sendall(raw)
            frame = _recv_frame(client2)
        finally:
            client2.close()
            server2.close()
        assert frame == payload
    finally:
        server.close()


# ----------------------------------------------------------------------
# DeltaResidual: the worker-side row view
# ----------------------------------------------------------------------
def test_view_serves_every_row_bit_identically(property_budget):
    rng = np.random.default_rng(zlib.crc32(b"delta-view") % 2**32)
    trials = max(4, property_budget)
    for trial in range(trials):
        n = int(rng.choice([1, 2, 3, 6, 13]))
        base = _random_symmetric(n, rng, inf_frac=0.2 if trial % 2 else 0.0)
        k = int(rng.integers(0, n + 1))
        rows = sorted(rng.choice(n, size=k, replace=False)) if k else []
        matrix = _perturb_rows(base, rows, rng)
        view = DeltaResidual(base, encode_delta(base, matrix, rows))
        assert view.shape == (n, n) and len(view) == n
        assert view.dtype == np.float64 and view.ndim == 2
        assert np.array_equal(view.dense(), matrix)
        for i in range(n):
            assert np.array_equal(view[i], matrix[i]), (n, rows, i)
            assert np.array_equal(view[i - n], matrix[i - n])  # negative index
        # Fancy indexing: shuffled, duplicated and negative indices.
        idx = rng.integers(-n, n, size=2 * n + 1)
        assert np.array_equal(view[idx], matrix[idx])


def test_view_rejects_unsupported_indexing():
    base = np.zeros((3, 3))
    view = DeltaResidual(base, encode_delta(base, base))
    with pytest.raises(IndexError):
        view[3]
    with pytest.raises(IndexError):
        view[-4]
    with pytest.raises(TypeError, match="integer row indexing"):
        view[np.zeros((2, 2), dtype=int)]
    with pytest.raises(TypeError, match="integer row indexing"):
        view[np.array([0.5])]


def test_score_response_on_view_matches_dense(property_budget):
    """The kernels relax from base + rows exactly as from the dense matrix."""
    rng = np.random.default_rng(zlib.crc32(b"delta-score") % 2**32)
    trials = max(2, property_budget // 4)
    for trial in range(trials):
        n = int(rng.integers(5, 9))
        game = _random_game(("euclidean", "metric", "general")[trial % 3], n, rng)
        profile = _random_profile(n, rng)
        from repro.core.incremental import IncrementalEngine

        engine = IncrementalEngine(game, profile)
        for u in range(n):
            dense = np.ascontiguousarray(engine.residual(u))
            base = _perturb_rows(dense, [int(rng.integers(0, n))], rng)
            view = DeltaResidual(base, encode_delta(base, dense))
            current = profile.strategy(u)
            for response in ("best", "greedy", "single"):
                got = score_response(
                    view, u, game.host.weights[u], game.alpha, current, response
                )
                want = score_response(
                    dense, u, game.host.weights[u], game.alpha, current, response
                )
                assert got == want, (trial, u, response)


# ----------------------------------------------------------------------
# Cross-oracle sweep: delta == dense across backends and schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ("euclidean", "metric", "tree", "one_two", "general"))
def test_delta_pool_matches_dense_and_serial(variant, property_budget):
    """serial == pool/dense == pool/delta, trajectories and EngineStats."""
    rng = np.random.default_rng(zlib.crc32(f"delta-pool-{variant}".encode()) % 2**32)
    trials = max(1, property_budget // 8)
    for trial in range(trials):
        n = int(rng.integers(5, 10))
        game = _random_game(variant, n, rng)
        start = _random_profile(n, rng, density=0.35)
        schedule = ("batched", "sequential")[trial % 2]
        runs = [run_dynamics(game, start, schedule=schedule, max_rounds=8, rng=7)]
        stats = {}
        for encoding in ("dense", "delta"):
            config = SimulationConfig(
                schedule=schedule,
                workers=2,
                max_rounds=8,
                residual_encoding=encoding,
            )
            with GameSession(game, config) as session:
                runs.append(session.run(start, rng=7))
                stats[encoding] = session.stats().evaluator_stats
        _assert_identical_runs(runs)
        assert stats["delta"].bytes_sent <= stats["dense"].bytes_sent


def test_delta_remote_matches_dense_and_serial():
    """serial == remote/dense == remote/delta over a live local fleet."""
    rng = np.random.default_rng(zlib.crc32(b"delta-remote") % 2**32)
    n = 8
    game = _random_game("euclidean", n, rng)
    start = _random_profile(n, rng, density=0.4)
    for schedule in ("batched", "sequential"):
        runs = [run_dynamics(game, start, schedule=schedule, max_rounds=8, rng=7)]
        stats = {}
        for encoding in ("dense", "delta"):
            processes, endpoints = _spawn_fleet()
            try:
                config = SimulationConfig(
                    backend="remote",
                    endpoints=tuple(endpoints),
                    batch_timeout=10.0,
                    schedule=schedule,
                    max_rounds=8,
                    residual_encoding=encoding,
                )
                with GameSession(game, config) as session:
                    runs.append(session.run(start, rng=7))
                    stats[encoding] = session.stats().evaluator_stats
            finally:
                _reap_processes(processes, timeout=5.0)
        _assert_identical_runs(runs)
        assert stats["delta"].bytes_sent <= stats["dense"].bytes_sent


def test_residual_encoding_is_validated():
    with pytest.raises(ValueError, match="residual_encoding"):
        SimulationConfig(residual_encoding="sparse")
    game = _random_game("metric", 5, np.random.default_rng(0))
    with pytest.raises(ValueError, match="residual_encoding"):
        ParallelEvaluator.for_game(game, workers=1, residual_encoding="rle")


# ----------------------------------------------------------------------
# Chaos: a worker dropped mid-frame while a delta batch is on the wire
# ----------------------------------------------------------------------
def test_hang_mid_frame_shard_redispatches_bit_identically():
    """A connection dropped halfway through a residual frame costs a retry.

    The faulted worker reads the delta_batch header plus only part of the
    first residual frame and stalls — the client is left mid-send with a
    packed delta partially on the wire.  The batch deadline must fire, the
    shard must be re-dispatched (to the healthy peer or down the ladder),
    and the trajectory must stay bit-identical to a serial run.
    """
    rng = np.random.default_rng(zlib.crc32(b"delta-midframe") % 2**32)
    n = 6
    game = _random_game("metric", n, rng)
    start = _random_profile(n, rng)
    serial = run_dynamics(game, start, schedule="batched", max_rounds=6, rng=7)
    plan = FaultPlan(
        faults=(Fault(kind="hang_mid_frame", at_batch=1, endpoint=0, duration=5.0),)
    )
    processes, endpoints = _spawn_fleet(plan)
    try:
        config = SimulationConfig(
            backend="remote",
            endpoints=tuple(endpoints),
            batch_timeout=1.0,
            schedule="batched",
            max_rounds=6,
            residual_encoding="delta",
        )
        with GameSession(game, config) as session:
            chaotic = session.run(start, rng=7)
            stats = session.stats()
    finally:
        _reap_processes(processes, timeout=5.0)
    _assert_identical_runs([serial, chaotic])
    assert stats.evaluator_stats.failures >= 1  # the deadline fired mid-frame
