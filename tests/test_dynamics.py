"""Tests for response dynamics, convergence and cycle verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamics import (
    best_response_dynamics,
    run_dynamics,
    verify_best_response_cycle,
)
from repro.core.equilibria import is_greedy_equilibrium, is_nash_equilibrium
from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.strategy import StrategyProfile


class TestConvergence:
    def test_converges_on_small_euclidean(self, small_euclidean_game):
        result = best_response_dynamics(
            small_euclidean_game, StrategyProfile.empty(5), max_rounds=40
        )
        assert result.converged
        assert is_nash_equilibrium(small_euclidean_game, result.final_profile)

    def test_converged_state_has_no_improving_round(self, small_tree_game):
        result = best_response_dynamics(
            small_tree_game, StrategyProfile.empty(5), max_rounds=40
        )
        assert result.converged
        assert result.moves >= 1
        assert result.social_costs[-1] <= result.social_costs[0]

    def test_single_move_dynamics_reach_greedy_equilibrium(self, small_euclidean_game):
        result = run_dynamics(
            small_euclidean_game,
            StrategyProfile.empty(5),
            response="single",
            max_rounds=60,
        )
        assert result.converged
        assert is_greedy_equilibrium(small_euclidean_game, result.final_profile)

    def test_greedy_response_dynamics(self, small_euclidean_game):
        result = run_dynamics(
            small_euclidean_game,
            StrategyProfile.complete(5),
            response="greedy",
            max_rounds=60,
        )
        assert result.converged
        assert is_greedy_equilibrium(small_euclidean_game, result.final_profile)

    def test_random_order(self, small_euclidean_game, rng):
        result = run_dynamics(
            small_euclidean_game,
            StrategyProfile.empty(5),
            order="random",
            max_rounds=40,
            rng=rng,
        )
        assert result.converged

    def test_max_gain_order(self, small_euclidean_game):
        result = run_dynamics(
            small_euclidean_game,
            StrategyProfile.empty(5),
            order="max_gain",
            max_rounds=40,
        )
        assert result.converged
        assert is_nash_equilibrium(small_euclidean_game, result.final_profile)

    def test_explicit_activation_sequence(self, small_euclidean_game):
        result = run_dynamics(
            small_euclidean_game,
            StrategyProfile.empty(5),
            order=[0, 1, 2, 3, 4, 0, 1, 2, 3, 4],
            max_rounds=10,
        )
        assert result.steps > 0

    def test_history_recording(self, small_euclidean_game):
        result = run_dynamics(
            small_euclidean_game,
            StrategyProfile.empty(5),
            max_rounds=20,
            record_history=True,
        )
        assert result.history is not None
        assert len(result.history) == result.moves + 1
        assert len(result.social_costs) == result.moves + 1

    def test_already_stable_start(self, small_tree_game):
        from repro.core.equilibria import tree_profile_from_host

        tree = tree_profile_from_host(small_tree_game)
        result = best_response_dynamics(small_tree_game, tree, max_rounds=5)
        assert result.converged
        assert result.moves == 0
        assert result.final_profile == tree

    def test_zero_round_budget_reports_not_converged(self, small_euclidean_game):
        result = best_response_dynamics(
            small_euclidean_game, StrategyProfile.empty(5), max_rounds=0
        )
        assert not result.converged

    def test_unknown_order_rejected(self, small_euclidean_game):
        with pytest.raises(ValueError):
            run_dynamics(small_euclidean_game, StrategyProfile.empty(5), order="bogus")

    def test_unknown_response_rejected(self, small_euclidean_game):
        with pytest.raises(ValueError):
            run_dynamics(small_euclidean_game, StrategyProfile.empty(5), response="bogus")


class TestDeterminism:
    """``order="random"`` must be reproducible: explicit rng/seed, no module-level RNG."""

    def _run(self, game, rng):
        return run_dynamics(
            game,
            StrategyProfile.empty(5),
            order="random",
            max_rounds=40,
            rng=rng,
            record_history=True,
        )

    def test_same_seed_same_trajectory(self, small_euclidean_game):
        a = self._run(small_euclidean_game, np.random.default_rng(42))
        b = self._run(small_euclidean_game, np.random.default_rng(42))
        assert a.moves == b.moves and a.steps == b.steps
        assert a.social_costs == b.social_costs
        assert a.history == b.history
        assert a.final_profile == b.final_profile

    def test_integer_seed_accepted_and_deterministic(self, small_euclidean_game):
        a = self._run(small_euclidean_game, 42)
        b = self._run(small_euclidean_game, np.random.default_rng(42))
        assert a.social_costs == b.social_costs
        assert a.final_profile == b.final_profile

    def test_default_rng_is_deterministic(self, small_euclidean_game):
        """rng=None falls back to a fixed seed, never to OS entropy."""
        a = self._run(small_euclidean_game, None)
        b = self._run(small_euclidean_game, None)
        assert a.social_costs == b.social_costs
        assert a.history == b.history
        c = self._run(small_euclidean_game, 0)
        assert a.social_costs == c.social_costs

    def test_engines_share_the_random_activation_stream(self, small_euclidean_game):
        kwargs = dict(order="random", max_rounds=40, record_history=True)
        a = run_dynamics(
            small_euclidean_game, StrategyProfile.empty(5), rng=7, engine="exact", **kwargs
        )
        b = run_dynamics(
            small_euclidean_game, StrategyProfile.empty(5), rng=7, engine="incremental", **kwargs
        )
        assert a.moves == b.moves
        assert a.final_profile == b.final_profile


class TestCycleVerification:
    def _two_state_cycle(self):
        """A hand-built 2-state sequence that is NOT improving (used as negative case)."""
        a = StrategyProfile.from_sets(3, [[1], [], []])
        b = StrategyProfile.from_sets(3, [[1, 2], [], []])
        return [a, b]

    def test_rejects_non_improving_sequences(self):
        game = NetworkCreationGame(HostGraph.unit(3), alpha=5.0)
        states = self._two_state_cycle()
        result = verify_best_response_cycle(game, states, require_best_response=False)
        # moving from a to b buys an expensive edge: not improving in both directions
        assert not result.violates_fip

    def test_requires_single_agent_changes(self):
        game = NetworkCreationGame(HostGraph.unit(3), alpha=1.0)
        a = StrategyProfile.from_sets(3, [[1], [], []])
        b = StrategyProfile.from_sets(3, [[2], [2], []])  # two agents changed
        result = verify_best_response_cycle(game, [a, b])
        assert not result.is_cycle
        assert result.failures

    def test_needs_at_least_two_states(self):
        game = NetworkCreationGame(HostGraph.unit(3), alpha=1.0)
        result = verify_best_response_cycle(game, [StrategyProfile.empty(3)])
        assert not result.is_cycle

    def test_detects_genuine_improving_cycle_from_search(self):
        """If the cycle search finds a cycle, the verifier must accept it as improving."""
        from repro.constructions.br_cycles import (
            fig8_geometric_cycle_host,
            search_improving_response_cycle,
        )

        game = fig8_geometric_cycle_host(alpha=1.0)
        found = search_improving_response_cycle(
            game, response="single", max_states=300
        )
        if found.found:
            result = verify_best_response_cycle(
                game, list(found.cycle), require_best_response=False
            )
            assert result.violates_fip


class TestDynamicsOnOneTwo:
    def test_small_alpha_reaches_algorithm1_network(self):
        """Thm. 9: for alpha < 1/2 dynamics end in the Algorithm 1 network."""
        from repro.core.social_optimum import algorithm1_one_two

        host = HostGraph.one_two([(0, 1), (1, 2), (2, 3), (3, 0)], 4)
        game = NetworkCreationGame(host, alpha=0.3)
        result = best_response_dynamics(game, StrategyProfile.empty(4), max_rounds=30)
        assert result.converged
        opt = algorithm1_one_two(game)
        assert game.social_cost(result.final_profile) == pytest.approx(opt.cost)
        assert set(result.final_profile.edges()) == set(opt.profile.edges())
