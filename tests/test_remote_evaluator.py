"""Remote-backend contracts: wire exactness, determinism, connection lifecycle.

The socket transport (:mod:`repro.core.remote`) must be *indistinguishable*
from the serial engine and from the shared-memory backend — the guarantees
pinned here:

* **backend invariance** — dynamics through ``backend="remote"`` (1 and 2
  localhost worker processes) follow bit-identical trajectories, engine
  stats and proposal-cache counters to ``workers=1`` serial runs, across
  every model variant of the paper, both activation schedules and the
  ``max_gain`` order, because workers run the same pure scoring kernel on
  matrices that cross the wire as raw bytes and results round-trip through
  ``float.hex`` exactly;

* **connection lifecycle** — connections open lazily on the first
  evaluate, one connection set per evaluator (``pools_started``), a
  ``GameSession`` sweep opens exactly one set however many runs it makes
  (``SessionStats``), ``close()`` is idempotent and a closed evaluator
  reconnects on demand while the worker servers keep serving;

* **wire format** — length-prefixed framing round-trips matrices
  (including ``inf`` non-edges) bit-exactly, protocol violations surface
  as :class:`~repro.core.remote.RemoteEvaluatorError` rather than hangs,
  and malformed endpoints are rejected at config-validation time;

* **failure semantics** — a worker killed mid-sweep costs its shard a
  re-dispatch, never a bit of the trajectory (chaos tests across every
  variant); a *hung* worker trips ``batch_timeout`` instead of blocking
  forever; a restarted worker rejoins on the next batch; endpoints can be
  added/removed between batches; and the worker child processes are
  reliably reaped even when they ignore ``SIGTERM``.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing as mp
import signal
import socket
import threading
import time
import zlib

import numpy as np
import pytest

from repro.core import (
    GameSession,
    IncrementalEngine,
    NetworkCreationGame,
    SimulationConfig,
    StrategyProfile,
    run_dynamics,
)
from repro.core.remote import (
    PROTOCOL_VERSION,
    BreakerPolicy,
    EndpointSet,
    RemoteEvaluator,
    RemoteEvaluatorError,
    WorkerServer,
    _pack_result,
    _reap_processes,
    _recv_frame,
    _recv_json,
    _send_json,
    _unpack_result,
    local_workers,
    parse_endpoint,
    spawn_local_worker,
)
from test_parallel_evaluator import (
    VARIANTS,
    _assert_identical_runs,
    _random_game,
    _random_profile,
)


@pytest.fixture(scope="module")
def endpoints():
    """Two localhost worker-server processes shared by the whole module."""
    with local_workers(2) as eps:
        yield eps


def _remote_config(eps, **kwargs) -> SimulationConfig:
    return SimulationConfig(backend="remote", endpoints=tuple(eps), **kwargs)


# ----------------------------------------------------------------------
# Backend invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_remote_backend_matches_serial_dynamics(variant, endpoints, property_budget):
    """Remote runs (1 and 2 endpoints) are bit-identical to serial runs."""
    rng = np.random.default_rng(zlib.crc32(f"remote-{variant}".encode()) % 2**32)
    trials = max(1, property_budget // 6)
    for trial in range(trials):
        n = int(rng.integers(4, 9))
        game = _random_game(variant, n, rng)
        start = _random_profile(n, rng, density=float(rng.uniform(0.1, 0.5)))
        response = ("best", "greedy", "single")[trial % 3]
        order = ("round_robin", "random")[trial % 2]
        for schedule in ("sequential", "batched"):
            serial = run_dynamics(
                game, start, response=response, order=order,
                max_rounds=10, rng=7, schedule=schedule, workers=1,
            )
            remotes = [
                run_dynamics(
                    game, start, rng=7,
                    config=_remote_config(
                        eps, response=response, order=order,
                        max_rounds=10, schedule=schedule,
                    ),
                )
                for eps in (endpoints[:1], endpoints)
            ]
            _assert_identical_runs([serial, *remotes])


def test_remote_max_gain_matches_serial(endpoints):
    """max_gain re-scores everyone per step — all of it shipped to the workers."""
    rng = np.random.default_rng(23)
    game = _random_game("euclidean", 8, rng)
    start = _random_profile(8, rng)
    serial = run_dynamics(game, start, order="max_gain", max_rounds=6)
    remote = run_dynamics(
        game, start, config=_remote_config(endpoints, order="max_gain", max_rounds=6)
    )
    _assert_identical_runs([serial, remote])


def test_remote_evaluate_matches_engine_respond(endpoints):
    """RemoteEvaluator.evaluate equals per-agent serial scoring bit-exactly."""
    rng = np.random.default_rng(31)
    for response in ("best", "greedy", "single"):
        n = 7
        game = _random_game("general", n, rng)
        profile = _random_profile(n, rng)
        engine = IncrementalEngine(game, profile)
        tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(n)]
        with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
            batch = evaluator.evaluate(tasks, response)
        assert batch == [engine.respond(u, response) for u in range(n)]


# ----------------------------------------------------------------------
# Connection lifecycle
# ----------------------------------------------------------------------
def test_session_sweep_opens_one_connection_set(endpoints):
    """However many runs a sweep makes, the session connects exactly once."""
    rng = np.random.default_rng(3)
    game = _random_game("euclidean", 7, rng)
    session = GameSession(game, _remote_config(endpoints, schedule="batched"))
    with session:
        session.sample_equilibria(num_samples=5)
        stats = session.stats()
        assert stats.runs >= 5  # structured seed profiles add extra runs
        assert stats.engines_created == 1
        assert stats.evaluators_created == 1
        assert stats.evaluator_pools_started == 1  # one connection set, ever
        assert stats.evaluator_running
    closed = session.stats()
    assert not closed.evaluator_running
    assert closed.evaluator_pools_started == 1


def test_lazy_connect_reuse_and_reconnect(endpoints):
    """Connections appear on first use, are reused, and close() is idempotent."""
    rng = np.random.default_rng(41)
    game = _random_game("metric", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]
    evaluator = RemoteEvaluator.for_game(game, endpoints=endpoints)
    assert not evaluator.is_running  # lazy: nothing connected yet
    assert evaluator.workers == 2
    first = evaluator.evaluate(tasks, "single")
    assert evaluator.is_running
    assert evaluator.pools_started == 1
    assert evaluator.evaluate(tasks, "single") == first  # connections reused
    assert evaluator.pools_started == 1
    evaluator.close()
    assert not evaluator.is_running
    evaluator.close()  # idempotent
    # the servers outlive the client: a closed evaluator reconnects on demand
    assert evaluator.evaluate(tasks, "single") == first
    assert evaluator.pools_started == 2
    stats = evaluator.stats
    assert stats.backend == "remote"
    assert stats.batches == 3 and stats.tasks == 18
    assert stats.bytes_sent > 0 and stats.bytes_received > 0
    evaluator.close()


def test_engine_close_spares_injected_remote_evaluator(endpoints):
    """Ownership rule: engines only close evaluators they created."""
    rng = np.random.default_rng(43)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
        engine = IncrementalEngine(game, profile, evaluator=evaluator)
        engine.respond_many(range(6), "single")
        assert evaluator.is_running
        engine.close()
        assert evaluator.is_running  # injected: the engine must not close it
        assert evaluator.pools_started == 1


def test_connect_failure_raises_not_hangs():
    game = _random_game("euclidean", 5, np.random.default_rng(0))
    evaluator = RemoteEvaluator.for_game(
        game, endpoints=["127.0.0.1:1"], connect_timeout=2.0
    )
    profile = _random_profile(5, np.random.default_rng(0))
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(5)]
    with pytest.raises(OSError):
        evaluator.evaluate(tasks, "single")
    assert not evaluator.is_running
    assert evaluator.pools_started == 0


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def test_result_serialization_is_bit_exact():
    from repro.core.best_response import BestResponseResult

    for cost, current in [
        (1.0 / 3.0, 2.0 / 7.0),
        (float("inf"), 1e-300),
        (0.1 + 0.2, 0.3),  # the classic: unequal floats must stay unequal
    ]:
        result = BestResponseResult(
            agent=3, strategy=frozenset({1, 4}), cost=cost,
            current_cost=current, method="incremental",
        )
        assert _unpack_result(_pack_result(result)) == result


def test_handshake_rejects_protocol_mismatch():
    server = WorkerServer()
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            _send_json(
                sock,
                {"kind": "hello", "protocol": PROTOCOL_VERSION + 1, "n": 2, "alpha": 1.0},
            )
            sock.sendall(b"\x00" * 8 + b"")  # empty weights frame
            reply = _recv_json(sock)
            assert reply["kind"] == "error"
            assert "protocol mismatch" in reply["message"]
    finally:
        server.shutdown()


def test_worker_error_propagates_to_client(endpoints):
    """A bad response kind fails server-side and raises client-side."""
    rng = np.random.default_rng(47)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(5)]
    with RemoteEvaluator.for_game(game, endpoints=endpoints[:1]) as evaluator:
        with pytest.raises(RemoteEvaluatorError, match="worker failed"):
            evaluator.evaluate(tasks, "bogus-response-kind")


def test_failed_batch_invalidates_the_connection_set(endpoints):
    """A batch that kills every endpoint leaves no stale connection behind.

    A worker-side failure drops that endpoint's (desynchronized)
    connection at the moment it fails; when the failure hits *every*
    endpoint — here both workers reject the bogus response kind — the
    whole set ends up down and the batch raises.  A caller that catches
    the error gets a clean lazy reconnect — and correct results — on the
    next call, counted as a second connection-set establishment.
    """
    rng = np.random.default_rng(59)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]
    serial = [engine.respond(u, "single") for u in range(6)]
    with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
        assert evaluator.evaluate(tasks, "single") == serial
        with pytest.raises(RemoteEvaluatorError):
            evaluator.evaluate(tasks, "bogus-response-kind")
        assert not evaluator.is_running  # desynced set dropped, not reused
        assert evaluator.evaluate(tasks, "single") == serial  # clean reconnect
        assert evaluator.pools_started == 2


def test_parse_endpoint():
    assert parse_endpoint("example.org:8471") == ("example.org", 8471)
    for bad in ("nocolon", ":90", "host:", "host:abc"):
        with pytest.raises(ValueError, match="invalid endpoint"):
            parse_endpoint(bad)
    with pytest.raises(ValueError, match="endpoint"):
        RemoteEvaluator(np.zeros((3, 3)), 1.0, endpoints=[])


# ----------------------------------------------------------------------
# Failure semantics: chaos, timeouts, rejoin, fleet management
# ----------------------------------------------------------------------
def _engine_tasks(game, profile):
    engine = IncrementalEngine(game, profile)
    n = game.n
    return engine, [
        (u, engine.residual(u), profile.strategy(u)) for u in range(n)
    ]


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_chaos_worker_killed_mid_sweep_is_bit_identical(variant):
    """SIGKILL one of two workers mid-sweep: the sweep completes unchanged.

    The acceptance centerpiece: scoring tasks are pure and results are
    gathered in submission order, so a failed endpoint's shard re-runs on
    the survivor without perturbing a single bit of the trajectory — for
    every model variant and both activation schedules.  The retry path is
    driven by the batched schedule (the sequential schedule scores
    serially in-process); the stats must show the failure and the shard
    re-dispatch.
    """
    rng = np.random.default_rng(zlib.crc32(f"chaos-{variant}".encode()) % 2**32)
    n = int(rng.integers(5, 8))
    game = _random_game(variant, n, rng)
    start = _random_profile(n, rng, density=0.35)
    schedules = ("sequential", "batched")
    serial = {
        schedule: run_dynamics(
            game, start, max_rounds=8, rng=7, schedule=schedule, workers=1
        )
        for schedule in schedules
    }
    victim, victim_ep = spawn_local_worker()
    survivor, survivor_ep = spawn_local_worker()
    try:
        config = SimulationConfig(
            backend="remote",
            endpoints=(victim_ep, survivor_ep),
            batch_timeout=30.0,
            max_retries=2,
            max_rounds=8,
        )
        with GameSession(game, config) as session:
            before = {
                s: session.run(start, rng=7, schedule=s) for s in schedules
            }
            victim.kill()
            victim.join()
            after = {
                s: session.run(start, rng=7, schedule=s) for s in schedules
            }
            stats = session.stats()
        for schedule in schedules:
            _assert_identical_runs(
                [serial[schedule], before[schedule], after[schedule]]
            )
        fleet = stats.evaluator_stats
        assert fleet is not None and fleet.backend == "remote"
        assert fleet.failures >= 1  # the dead victim was noticed...
        assert fleet.retries >= 1  # ...and its shard re-dispatched
        assert fleet.endpoints_total == 2 and fleet.endpoints_alive == 1
        assert dict(fleet.endpoint_failures)[victim_ep] >= 1
        assert stats.evaluator_pools_started == 1  # the set never fully died
    finally:
        _reap_processes([victim, survivor], timeout=5.0)


class _HungWorker:
    """A worker that handshakes correctly, then never answers a batch.

    Simulates the failure mode the batch deadline exists for: a wedged —
    not dead — worker process whose socket stays open while it produces
    no bytes.  Without ``batch_timeout`` the client would block in
    ``recv`` forever.
    """

    def __init__(self) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(4)
        host, port = self._sock.getsockname()[:2]
        self.endpoint = f"{host}:{port}"
        threading.Thread(target=self._accept_loop, daemon=True).start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve, args=(conn,), daemon=True
            ).start()

    @staticmethod
    def _serve(conn: socket.socket) -> None:
        with contextlib.suppress(Exception):
            _recv_json(conn)  # hello
            _recv_frame(conn)  # weights
            _send_json(conn, {"kind": "ready", "pid": 0})
            while _recv_frame(conn) is not None:
                pass  # swallow batches, never reply

    def shutdown(self) -> None:
        with contextlib.suppress(OSError):
            self._sock.close()


def test_hung_worker_raises_within_batch_timeout():
    """A wedged worker trips the deadline instead of hanging the client."""
    rng = np.random.default_rng(61)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    _engine, tasks = _engine_tasks(game, profile)
    hung = _HungWorker()
    try:
        evaluator = RemoteEvaluator.for_game(
            game, endpoints=[hung.endpoint], batch_timeout=1.0, max_retries=2
        )
        started = time.monotonic()
        with pytest.raises(RemoteEvaluatorError, match="down"):
            evaluator.evaluate(tasks, "single")
        assert time.monotonic() - started < 10.0  # deadline, not a hang
        assert not evaluator.is_running
        evaluator.close()
    finally:
        hung.shutdown()


def test_hung_worker_shard_redispatches_to_survivor(endpoints):
    """With a healthy peer, a hung worker costs a retry — not the batch."""
    rng = np.random.default_rng(67)
    game = _random_game("metric", 6, rng)
    profile = _random_profile(6, rng)
    engine, tasks = _engine_tasks(game, profile)
    serial = [engine.respond(u, "single") for u in range(6)]
    hung = _HungWorker()
    try:
        with RemoteEvaluator.for_game(
            game,
            endpoints=[hung.endpoint, endpoints[0]],
            batch_timeout=1.0,
            max_retries=2,
        ) as evaluator:
            assert evaluator.evaluate(tasks, "single") == serial
            stats = evaluator.stats
            assert stats.failures >= 1 and stats.retries >= 1
            assert dict(stats.endpoint_failures)[hung.endpoint] >= 1
            assert dict(stats.endpoint_retries)[endpoints[0]] >= 1
            assert stats.endpoints_alive == 1
    finally:
        hung.shutdown()


def test_restarted_worker_rejoins_on_next_batch():
    """A worker restarted on its old endpoint rejoins the fleet lazily."""
    rng = np.random.default_rng(71)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    _engine, tasks = _engine_tasks(game, profile)
    victim, victim_ep = spawn_local_worker()
    survivor, survivor_ep = spawn_local_worker()
    restarted = None
    try:
        evaluator = RemoteEvaluator.for_game(
            game,
            endpoints=[victim_ep, survivor_ep],
            batch_timeout=10.0,
            max_retries=2,
        )
        first = evaluator.evaluate(tasks, "single")
        victim.kill()
        victim.join()
        # The survivor carries the batch; the set itself never went down.
        assert evaluator.evaluate(tasks, "single") == first
        assert evaluator.pools_started == 1
        assert evaluator.stats.endpoints_alive == 1
        restarted, _ep = spawn_local_worker(port=parse_endpoint(victim_ep)[1])
        assert evaluator.evaluate(tasks, "single") == first
        stats = evaluator.stats
        assert stats.endpoints_alive == 2  # the restart rejoined...
        assert stats.reconnects >= 1  # ...counted as a reconnect...
        assert evaluator.pools_started == 1  # ...not as a new connection set
        evaluator.close()
    finally:
        _reap_processes(
            [p for p in (victim, survivor, restarted) if p is not None],
            timeout=5.0,
        )


def test_check_endpoints_pings_the_fleet(endpoints):
    """Health checks report per-endpoint liveness without raising."""
    rng = np.random.default_rng(73)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    _engine, tasks = _engine_tasks(game, profile)
    evaluator = RemoteEvaluator.for_game(
        game, endpoints=[endpoints[0], "127.0.0.1:1"], connect_timeout=2.0
    )
    # Probe path: nothing connected yet — pings use short-lived
    # connections (no hello, no weights) and establish nothing.
    health = evaluator.check_endpoints()
    assert health == {endpoints[0]: True, "127.0.0.1:1": False}
    assert not evaluator.is_running and evaluator.pools_started == 0
    # Connected path: pings ride the established connection.
    evaluator.evaluate(tasks, "single")
    assert evaluator.check_endpoints()[endpoints[0]] is True
    assert evaluator.pools_started == 1
    evaluator.close()


def test_add_and_remove_endpoints_between_batches(endpoints):
    """The fleet is elastic: membership changes between batches, results don't."""
    rng = np.random.default_rng(79)
    game = _random_game("one_two", 6, rng)
    profile = _random_profile(6, rng)
    _engine, tasks = _engine_tasks(game, profile)
    evaluator = RemoteEvaluator.for_game(game, endpoints=endpoints[:1])
    first = evaluator.evaluate(tasks, "single")
    evaluator.add_endpoint(endpoints[1])  # joins on the next batch
    assert evaluator.workers == 2
    assert evaluator.evaluate(tasks, "single") == first
    assert evaluator.stats.endpoints_alive == 2
    evaluator.remove_endpoint(endpoints[0])
    assert evaluator.workers == 1
    assert evaluator.evaluate(tasks, "single") == first
    with pytest.raises(ValueError, match="last endpoint"):
        evaluator.remove_endpoint(endpoints[1])
    with pytest.raises(ValueError, match="duplicate"):
        evaluator.add_endpoint(endpoints[1])
    with pytest.raises(ValueError, match="unknown"):
        evaluator.remove_endpoint("127.0.0.1:2")
    with pytest.raises(ValueError, match="invalid endpoint"):
        evaluator.add_endpoint("not-an-endpoint")
    evaluator.close()


def test_endpoint_set_is_ordered_and_validating():
    fleet = EndpointSet(["a:1", "b:2"])
    assert fleet.addresses == ("a:1", "b:2")
    assert len(fleet) == 2 and "a:1" in fleet and "c:3" not in fleet
    fleet.add("c:3")
    assert fleet.addresses == ("a:1", "b:2", "c:3")
    assert fleet.pop("b:2").address == "b:2"
    assert fleet.addresses == ("a:1", "c:3")
    assert fleet.live() == []  # nothing was ever connected


def test_atexit_safety_net_registers_once_per_evaluator(
    endpoints, monkeypatch
):
    """Reconnect cycles must not stack duplicate atexit registrations."""
    rng = np.random.default_rng(83)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    _engine, tasks = _engine_tasks(game, profile)
    registered = []
    real_register = atexit.register
    monkeypatch.setattr(
        atexit,
        "register",
        lambda func, *a, **kw: (registered.append(func), real_register(func, *a, **kw))[1],
    )
    evaluator = RemoteEvaluator.for_game(game, endpoints=endpoints)
    first = evaluator.evaluate(tasks, "single")
    evaluator.close()
    assert evaluator.evaluate(tasks, "single") == first  # set revived
    assert evaluator.pools_started == 2
    evaluator.close()
    ours = [f for f in registered if getattr(f, "__self__", None) is evaluator]
    assert len(ours) == 1  # registered on first connect, never again


# ----------------------------------------------------------------------
# Sharding edge cases and worker-process lifecycle
# ----------------------------------------------------------------------
def test_shard_never_produces_empty_spans():
    shard = RemoteEvaluator._shard
    assert shard(7, 3) == [(0, 3), (3, 5), (5, 7)]
    assert shard(6, 2) == [(0, 3), (3, 6)]
    assert shard(3, 5) == [(0, 1), (1, 2), (2, 3)]  # tasks < endpoints
    assert shard(1, 4) == [(0, 1)]
    assert shard(0, 3) == []  # tasks == 0
    for total in range(1, 12):
        for parts in range(1, 12):
            spans = shard(total, parts)
            assert all(start < stop for start, stop in spans)
            assert [s for s, _ in spans[1:]] == [e for _, e in spans[:-1]]
            assert spans[0][0] == 0 and spans[-1][1] == total


def test_fewer_tasks_than_endpoints_keeps_idle_workers_synchronized(endpoints):
    """A 1-task batch on 2 endpoints ships nothing to the idle worker."""
    rng = np.random.default_rng(89)
    game = _random_game("tree", 6, rng)
    profile = _random_profile(6, rng)
    engine, tasks = _engine_tasks(game, profile)
    serial = [engine.respond(u, "single") for u in range(6)]
    with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
        assert evaluator.evaluate(tasks[:1], "single") == serial[:1]
        # The idle endpoint received no header (and owes no reply): the
        # next full-width batch must still line up frame for frame.
        assert evaluator.evaluate(tasks, "single") == serial


def test_empty_batch_is_a_noop():
    """Zero tasks: no connection attempt, no counters, no results."""
    game = _random_game("euclidean", 4, np.random.default_rng(97))
    evaluator = RemoteEvaluator.for_game(
        game, endpoints=["127.0.0.1:1"]  # unconnectable: proves no connect
    )
    assert evaluator.evaluate([], "single") == []
    assert not evaluator.is_running
    assert evaluator.stats.batches == 0 and evaluator.pools_started == 0


def _ignore_sigterm_and_sleep(ready) -> None:  # pragma: no cover - child process
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    ready.send(True)
    ready.close()
    while True:
        time.sleep(0.1)


def _stubborn_child() -> mp.process.BaseProcess:
    method = "fork" if "fork" in mp.get_all_start_methods() else None
    ctx = mp.get_context(method)
    parent, child = ctx.Pipe()
    process = ctx.Process(
        target=_ignore_sigterm_and_sleep, args=(child,), daemon=True
    )
    process.start()
    child.close()
    assert parent.recv() is True  # SIGTERM handler installed: race-free
    parent.close()
    return process


def test_reap_processes_escalates_to_kill():
    """A worker that ignores SIGTERM is SIGKILLed, not leaked."""
    process = _stubborn_child()
    started = time.monotonic()
    _reap_processes([process], timeout=1.0)
    assert not process.is_alive()
    assert time.monotonic() - started < 8.0


def test_local_workers_reaps_stubborn_worker(monkeypatch):
    """The regression: local_workers() used to join() and hope."""
    from repro.core import remote as remote_module

    process = _stubborn_child()
    monkeypatch.setattr(
        remote_module,
        "spawn_local_worker",
        lambda host="127.0.0.1", **kwargs: (process, "127.0.0.1:1"),
    )
    with local_workers(1, reap_timeout=1.0):
        assert process.is_alive()
    assert not process.is_alive()


# ----------------------------------------------------------------------
# Circuit breaker (fake clock — no real sleeping)
# ----------------------------------------------------------------------
class _FakeClock:
    """A manually-advanced monotonic clock for breaker-schedule tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def test_breaker_policy_validates():
    with pytest.raises(ValueError, match="trip_after"):
        BreakerPolicy(trip_after=0)
    with pytest.raises(ValueError, match="base_delay"):
        BreakerPolicy(base_delay=0.0)
    with pytest.raises(ValueError, match="max_delay"):
        BreakerPolicy(base_delay=2.0, max_delay=1.0)
    with pytest.raises(ValueError, match="jitter"):
        BreakerPolicy(jitter=-0.1)


def test_breaker_delay_schedule_is_capped_and_deterministic():
    """Delays double from base to the cap; jitter is seed-deterministic."""
    plain = BreakerPolicy(base_delay=0.25, max_delay=4.0, jitter=0.0)
    rng = np.random.default_rng(0)
    assert [plain.delay(k, rng) for k in range(7)] == [
        0.25, 0.5, 1.0, 2.0, 4.0, 4.0, 4.0,
    ]
    jittered = BreakerPolicy(base_delay=0.25, max_delay=4.0, jitter=0.1, seed=3)
    rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
    schedule_a = [jittered.delay(k, rng_a) for k in range(10)]
    schedule_b = [jittered.delay(k, rng_b) for k in range(10)]
    assert schedule_a == schedule_b  # same seed, same probe schedule
    for k, delay in enumerate(schedule_a):
        assert delay <= 4.0 * 1.1 + 1e-12  # never beyond cap * (1 + jitter)
        assert delay >= min(4.0, 0.25 * 2.0**k)  # jitter only lengthens


def test_breaker_trips_dead_endpoint_and_skips_until_backoff_expires():
    """Trip on failure, skip probes while backed off, double on failed probe."""
    game = _random_game("euclidean", 5, np.random.default_rng(101))
    profile = _random_profile(5, np.random.default_rng(101))
    _engine, tasks = _engine_tasks(game, profile)
    clock = _FakeClock()
    evaluator = RemoteEvaluator.for_game(
        game,
        endpoints=["127.0.0.1:1"],
        connect_timeout=1.0,
        breaker=BreakerPolicy(trip_after=1, base_delay=0.25, jitter=0.0),
        clock=clock,
    )
    with pytest.raises(OSError):  # a real connect attempt, a real refusal
        evaluator.evaluate(tasks, "single")
    stats = evaluator.stats
    assert stats.breaker_trips == 1
    assert dict(stats.endpoint_backoff)["127.0.0.1:1"] == pytest.approx(0.25)
    # Backoff unexpired: no connect attempt at all, a clean breaker error.
    with pytest.raises(RemoteEvaluatorError, match="tripped"):
        evaluator.evaluate(tasks, "single")
    assert evaluator.stats.breaker_trips == 1  # skipped, not re-tripped
    assert evaluator.revive() is False  # revive honors the schedule too
    # Probe due: attempted, fails again, backoff doubles.
    clock.advance(0.25)
    with pytest.raises(OSError):
        evaluator.evaluate(tasks, "single")
    assert dict(evaluator.stats.endpoint_backoff)["127.0.0.1:1"] == pytest.approx(0.5)
    evaluator.close()


def test_breaker_probe_success_recovers_endpoint():
    """healthy -> tripped -> probing -> recovered, with a worker restart."""
    rng = np.random.default_rng(103)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    engine, tasks = _engine_tasks(game, profile)
    serial = [engine.respond(u, "single") for u in range(6)]
    victim, victim_ep = spawn_local_worker()
    restarted = None
    clock = _FakeClock()
    try:
        evaluator = RemoteEvaluator.for_game(
            game,
            endpoints=[victim_ep],
            batch_timeout=10.0,
            max_retries=2,
            breaker=BreakerPolicy(base_delay=0.25, jitter=0.0),
            clock=clock,
        )
        assert evaluator.evaluate(tasks, "single") == serial
        victim.kill()
        victim.join()
        with pytest.raises(RemoteEvaluatorError):
            evaluator.evaluate(tasks, "single")
        assert evaluator.stats.breaker_trips >= 1
        assert evaluator.revive() is False  # still backed off
        restarted, _ep = spawn_local_worker(port=parse_endpoint(victim_ep)[1])
        clock.advance(60.0)  # well past any backoff in the schedule
        deadline = time.monotonic() + 10.0
        while not evaluator.revive():  # the restarted server may still be binding
            assert time.monotonic() < deadline, "worker never came back"
            time.sleep(0.05)
        # A successful handshake resets the breaker state entirely.
        stats = evaluator.stats
        assert stats.endpoints_alive == 1
        assert all(b == 0.0 for _ep, b in stats.endpoint_backoff)
        assert evaluator.evaluate(tasks, "single") == serial
        evaluator.close()
    finally:
        _reap_processes(
            [p for p in (victim, restarted) if p is not None], timeout=5.0
        )


# ----------------------------------------------------------------------
# Shared-secret authentication (protocol 3)
# ----------------------------------------------------------------------
def test_auth_matched_tokens_are_invisible():
    """With the same secret on both sides, results match serial bit-exactly."""
    rng = np.random.default_rng(107)
    game = _random_game("metric", 6, rng)
    profile = _random_profile(6, rng)
    engine, tasks = _engine_tasks(game, profile)
    serial = [engine.respond(u, "single") for u in range(6)]
    worker, ep = spawn_local_worker(auth_token="sesame")
    try:
        with RemoteEvaluator.for_game(
            game, endpoints=[ep], auth_token="sesame"
        ) as evaluator:
            assert evaluator.evaluate(tasks, "single") == serial
            assert evaluator.evaluate(tasks, "single") == serial
            assert evaluator.stats.endpoints_alive == 1
    finally:
        _reap_processes([worker], timeout=5.0)


def test_auth_missing_client_token_is_rejected_cleanly():
    """An authenticated worker refuses a secretless client — error, not hang."""
    rng = np.random.default_rng(109)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    _engine, tasks = _engine_tasks(game, profile)
    worker, ep = spawn_local_worker(auth_token="sesame")
    try:
        evaluator = RemoteEvaluator.for_game(game, endpoints=[ep], batch_timeout=10.0)
        # Pings are pre-hello probes and carry no secret, by design.
        assert evaluator.check_endpoints() == {ep: True}
        started = time.monotonic()
        with pytest.raises(RemoteEvaluatorError, match="no credentials"):
            evaluator.evaluate(tasks, "single")
        assert time.monotonic() - started < 10.0  # rejected, not hung
        evaluator.close()
    finally:
        _reap_processes([worker], timeout=5.0)


def test_auth_unexpected_client_token_is_rejected_cleanly():
    """A secretless worker refuses an authenticating client (mutual auth)."""
    rng = np.random.default_rng(113)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    _engine, tasks = _engine_tasks(game, profile)
    worker, ep = spawn_local_worker()
    try:
        evaluator = RemoteEvaluator.for_game(
            game, endpoints=[ep], auth_token="sesame", batch_timeout=10.0
        )
        with pytest.raises(RemoteEvaluatorError, match="no --auth-token"):
            evaluator.evaluate(tasks, "single")
        evaluator.close()
    finally:
        _reap_processes([worker], timeout=5.0)


def test_auth_wrong_token_is_rejected_cleanly():
    rng = np.random.default_rng(127)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    _engine, tasks = _engine_tasks(game, profile)
    worker, ep = spawn_local_worker(auth_token="sesame")
    try:
        evaluator = RemoteEvaluator.for_game(
            game, endpoints=[ep], auth_token="open says me", batch_timeout=10.0
        )
        with pytest.raises(RemoteEvaluatorError, match="shared-secret mismatch"):
            evaluator.evaluate(tasks, "single")
        evaluator.close()
    finally:
        _reap_processes([worker], timeout=5.0)
