"""Remote-backend contracts: wire exactness, determinism, connection lifecycle.

The socket transport (:mod:`repro.core.remote`) must be *indistinguishable*
from the serial engine and from the shared-memory backend — the guarantees
pinned here:

* **backend invariance** — dynamics through ``backend="remote"`` (1 and 2
  localhost worker processes) follow bit-identical trajectories, engine
  stats and proposal-cache counters to ``workers=1`` serial runs, across
  every model variant of the paper, both activation schedules and the
  ``max_gain`` order, because workers run the same pure scoring kernel on
  matrices that cross the wire as raw bytes and results round-trip through
  ``float.hex`` exactly;

* **connection lifecycle** — connections open lazily on the first
  evaluate, one connection set per evaluator (``pools_started``), a
  ``GameSession`` sweep opens exactly one set however many runs it makes
  (``SessionStats``), ``close()`` is idempotent and a closed evaluator
  reconnects on demand while the worker servers keep serving;

* **wire format** — length-prefixed framing round-trips matrices
  (including ``inf`` non-edges) bit-exactly, protocol violations surface
  as :class:`~repro.core.remote.RemoteEvaluatorError` rather than hangs,
  and malformed endpoints are rejected at config-validation time.
"""

from __future__ import annotations

import socket
import zlib

import numpy as np
import pytest

from repro.core import (
    GameSession,
    IncrementalEngine,
    NetworkCreationGame,
    SimulationConfig,
    StrategyProfile,
    run_dynamics,
)
from repro.core.remote import (
    PROTOCOL_VERSION,
    RemoteEvaluator,
    RemoteEvaluatorError,
    WorkerServer,
    _pack_result,
    _recv_json,
    _send_json,
    _unpack_result,
    local_workers,
    parse_endpoint,
)
from test_parallel_evaluator import (
    VARIANTS,
    _assert_identical_runs,
    _random_game,
    _random_profile,
)


@pytest.fixture(scope="module")
def endpoints():
    """Two localhost worker-server processes shared by the whole module."""
    with local_workers(2) as eps:
        yield eps


def _remote_config(eps, **kwargs) -> SimulationConfig:
    return SimulationConfig(backend="remote", endpoints=tuple(eps), **kwargs)


# ----------------------------------------------------------------------
# Backend invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_remote_backend_matches_serial_dynamics(variant, endpoints, property_budget):
    """Remote runs (1 and 2 endpoints) are bit-identical to serial runs."""
    rng = np.random.default_rng(zlib.crc32(f"remote-{variant}".encode()) % 2**32)
    trials = max(1, property_budget // 6)
    for trial in range(trials):
        n = int(rng.integers(4, 9))
        game = _random_game(variant, n, rng)
        start = _random_profile(n, rng, density=float(rng.uniform(0.1, 0.5)))
        response = ("best", "greedy", "single")[trial % 3]
        order = ("round_robin", "random")[trial % 2]
        for schedule in ("sequential", "batched"):
            serial = run_dynamics(
                game, start, response=response, order=order,
                max_rounds=10, rng=7, schedule=schedule, workers=1,
            )
            remotes = [
                run_dynamics(
                    game, start, rng=7,
                    config=_remote_config(
                        eps, response=response, order=order,
                        max_rounds=10, schedule=schedule,
                    ),
                )
                for eps in (endpoints[:1], endpoints)
            ]
            _assert_identical_runs([serial, *remotes])


def test_remote_max_gain_matches_serial(endpoints):
    """max_gain re-scores everyone per step — all of it shipped to the workers."""
    rng = np.random.default_rng(23)
    game = _random_game("euclidean", 8, rng)
    start = _random_profile(8, rng)
    serial = run_dynamics(game, start, order="max_gain", max_rounds=6)
    remote = run_dynamics(
        game, start, config=_remote_config(endpoints, order="max_gain", max_rounds=6)
    )
    _assert_identical_runs([serial, remote])


def test_remote_evaluate_matches_engine_respond(endpoints):
    """RemoteEvaluator.evaluate equals per-agent serial scoring bit-exactly."""
    rng = np.random.default_rng(31)
    for response in ("best", "greedy", "single"):
        n = 7
        game = _random_game("general", n, rng)
        profile = _random_profile(n, rng)
        engine = IncrementalEngine(game, profile)
        tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(n)]
        with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
            batch = evaluator.evaluate(tasks, response)
        assert batch == [engine.respond(u, response) for u in range(n)]


# ----------------------------------------------------------------------
# Connection lifecycle
# ----------------------------------------------------------------------
def test_session_sweep_opens_one_connection_set(endpoints):
    """However many runs a sweep makes, the session connects exactly once."""
    rng = np.random.default_rng(3)
    game = _random_game("euclidean", 7, rng)
    session = GameSession(game, _remote_config(endpoints, schedule="batched"))
    with session:
        session.sample_equilibria(num_samples=5)
        stats = session.stats()
        assert stats.runs >= 5  # structured seed profiles add extra runs
        assert stats.engines_created == 1
        assert stats.evaluators_created == 1
        assert stats.evaluator_pools_started == 1  # one connection set, ever
        assert stats.evaluator_running
    closed = session.stats()
    assert not closed.evaluator_running
    assert closed.evaluator_pools_started == 1


def test_lazy_connect_reuse_and_reconnect(endpoints):
    """Connections appear on first use, are reused, and close() is idempotent."""
    rng = np.random.default_rng(41)
    game = _random_game("metric", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]
    evaluator = RemoteEvaluator.for_game(game, endpoints=endpoints)
    assert not evaluator.is_running  # lazy: nothing connected yet
    assert evaluator.workers == 2
    first = evaluator.evaluate(tasks, "single")
    assert evaluator.is_running
    assert evaluator.pools_started == 1
    assert evaluator.evaluate(tasks, "single") == first  # connections reused
    assert evaluator.pools_started == 1
    evaluator.close()
    assert not evaluator.is_running
    evaluator.close()  # idempotent
    # the servers outlive the client: a closed evaluator reconnects on demand
    assert evaluator.evaluate(tasks, "single") == first
    assert evaluator.pools_started == 2
    stats = evaluator.stats
    assert stats.backend == "remote"
    assert stats.batches == 3 and stats.tasks == 18
    assert stats.bytes_sent > 0 and stats.bytes_received > 0
    evaluator.close()


def test_engine_close_spares_injected_remote_evaluator(endpoints):
    """Ownership rule: engines only close evaluators they created."""
    rng = np.random.default_rng(43)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
        engine = IncrementalEngine(game, profile, evaluator=evaluator)
        engine.respond_many(range(6), "single")
        assert evaluator.is_running
        engine.close()
        assert evaluator.is_running  # injected: the engine must not close it
        assert evaluator.pools_started == 1


def test_connect_failure_raises_not_hangs():
    game = _random_game("euclidean", 5, np.random.default_rng(0))
    evaluator = RemoteEvaluator.for_game(
        game, endpoints=["127.0.0.1:1"], connect_timeout=2.0
    )
    profile = _random_profile(5, np.random.default_rng(0))
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(5)]
    with pytest.raises(OSError):
        evaluator.evaluate(tasks, "single")
    assert not evaluator.is_running
    assert evaluator.pools_started == 0


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def test_result_serialization_is_bit_exact():
    from repro.core.best_response import BestResponseResult

    for cost, current in [
        (1.0 / 3.0, 2.0 / 7.0),
        (float("inf"), 1e-300),
        (0.1 + 0.2, 0.3),  # the classic: unequal floats must stay unequal
    ]:
        result = BestResponseResult(
            agent=3, strategy=frozenset({1, 4}), cost=cost,
            current_cost=current, method="incremental",
        )
        assert _unpack_result(_pack_result(result)) == result


def test_handshake_rejects_protocol_mismatch():
    server = WorkerServer()
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        with socket.create_connection((server.host, server.port), timeout=5) as sock:
            _send_json(
                sock,
                {"kind": "hello", "protocol": PROTOCOL_VERSION + 1, "n": 2, "alpha": 1.0},
            )
            sock.sendall(b"\x00" * 8 + b"")  # empty weights frame
            reply = _recv_json(sock)
            assert reply["kind"] == "error"
            assert "protocol mismatch" in reply["message"]
    finally:
        server.shutdown()


def test_worker_error_propagates_to_client(endpoints):
    """A bad response kind fails server-side and raises client-side."""
    rng = np.random.default_rng(47)
    game = _random_game("euclidean", 5, rng)
    profile = _random_profile(5, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(5)]
    with RemoteEvaluator.for_game(game, endpoints=endpoints[:1]) as evaluator:
        with pytest.raises(RemoteEvaluatorError, match="worker failed"):
            evaluator.evaluate(tasks, "bogus-response-kind")


def test_failed_batch_invalidates_the_connection_set(endpoints):
    """A mid-batch failure must drop the (desynchronized) connections.

    If the connection set survived a failed batch, unread replies from the
    trailing sockets would be read as the *next* batch's results and
    silently attributed to the wrong tasks.  Instead the evaluator closes
    the set on any evaluate failure; a caller that catches the error gets
    a clean reconnect — and correct results — on the next call.
    """
    rng = np.random.default_rng(59)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]
    serial = [engine.respond(u, "single") for u in range(6)]
    with RemoteEvaluator.for_game(game, endpoints=endpoints) as evaluator:
        assert evaluator.evaluate(tasks, "single") == serial
        with pytest.raises(RemoteEvaluatorError):
            evaluator.evaluate(tasks, "bogus-response-kind")
        assert not evaluator.is_running  # desynced set dropped, not reused
        assert evaluator.evaluate(tasks, "single") == serial  # clean reconnect
        assert evaluator.pools_started == 2


def test_parse_endpoint():
    assert parse_endpoint("example.org:8471") == ("example.org", 8471)
    for bad in ("nocolon", ":90", "host:", "host:abc"):
        with pytest.raises(ValueError, match="invalid endpoint"):
            parse_endpoint(bad)
    with pytest.raises(ValueError, match="endpoint"):
        RemoteEvaluator(np.zeros((3, 3)), 1.0, endpoints=[])
