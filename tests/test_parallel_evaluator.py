"""Parallel-evaluation contracts: determinism, shared memory, lifecycle.

Three guarantees of the multiprocess evaluation subsystem
(:mod:`repro.core.parallel`) are enforced here:

* **worker-count invariance** — ``workers in {1, 2, 4}`` produce
  bit-identical :class:`~repro.core.dynamics.DynamicsResult` trajectories
  (moves, steps, social costs, final profile, proposal-cache counters) and
  identical :class:`~repro.core.incremental.EngineStats` across every model
  variant of the paper and both activation schedules, because residuals are
  computed in the owning process and workers run the same pure scoring
  kernel against bitwise matrix copies;

* **shared-memory snapshot round-trip** — the
  :class:`~repro.core.parallel.SharedSnapshot` encoding preserves matrices
  (including ``inf`` non-edges) bit-exactly between create/attach views,
  and segments are unlinked on close;

* **pool lifecycle** — the worker pool is created lazily, reused across
  evaluations, and torn down by ``close()`` / context-manager exit without
  leaking worker processes or shared-memory segments (the regression tests
  for CLI runs and pytest sessions).

A regression test also pins the proposal-cache fix for double-bought
edges: a mover toggling its copy of a co-owned edge changes no network
edge but does change the co-owner's residual, which must invalidate the
co-owner's cached proposal.
"""

from __future__ import annotations

import multiprocessing as mp
import zlib
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core import (
    IncrementalEngine,
    NetworkCreationGame,
    ParallelEvaluator,
    SharedSnapshot,
    StrategyProfile,
    run_dynamics,
)
from repro.core.host_graph import HostGraph
from repro.metrics.generators import (
    random_euclidean_host,
    random_general_host,
    random_metric_host,
    random_one_infinity_host,
    random_one_two_host,
    random_tree_host,
    unit_host,
)

VARIANTS = {
    "ncg": lambda n, rng: unit_host(n),
    "one_two": lambda n, rng: random_one_two_host(n, rng=rng),
    "one_infinity": lambda n, rng: random_one_infinity_host(n, rng=rng),
    "tree": lambda n, rng: random_tree_host(n, rng=rng),
    "euclidean": lambda n, rng: random_euclidean_host(n, rng=rng),
    "metric": lambda n, rng: random_metric_host(n, rng=rng),
    "general": lambda n, rng: random_general_host(n, rng=rng),
}

WORKER_COUNTS = (1, 2, 4)


def _random_profile(n: int, rng: np.random.Generator, density: float = 0.35) -> StrategyProfile:
    owns = rng.random((n, n)) < density
    np.fill_diagonal(owns, False)
    return StrategyProfile(owns, copy=False, validate=False)


def _random_game(variant: str, n: int, rng: np.random.Generator) -> NetworkCreationGame:
    host = VARIANTS[variant](n, rng)
    return NetworkCreationGame(host, float(rng.uniform(0.2, 3.0)))


def _assert_identical_runs(results) -> None:
    """Bit-identical trajectories and engine stats across all runs."""
    base = results[0]
    for other in results[1:]:
        assert other.converged == base.converged
        assert other.steps == base.steps
        assert other.moves == base.moves
        assert other.cycle_detected == base.cycle_detected
        assert other.cycle_length == base.cycle_length
        assert other.final_profile == base.final_profile
        assert other.social_costs == base.social_costs  # exact float equality
        assert other.schedule_hits == base.schedule_hits
        assert other.schedule_misses == base.schedule_misses
        assert other.engine_stats == base.engine_stats


# ----------------------------------------------------------------------
# Worker-count invariance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_workers_produce_identical_dynamics(variant, property_budget):
    """workers in {1, 2, 4} follow bit-identical trajectories on both schedules."""
    rng = np.random.default_rng(zlib.crc32(f"workers-{variant}".encode()) % 2**32)
    trials = max(1, property_budget // 4)
    for trial in range(trials):
        n = int(rng.integers(4, 10))
        game = _random_game(variant, n, rng)
        start = _random_profile(n, rng, density=float(rng.uniform(0.1, 0.5)))
        response = ("best", "greedy", "single")[trial % 3]
        order = ("round_robin", "random")[trial % 2]
        for schedule in ("sequential", "batched"):
            runs = [
                run_dynamics(
                    game,
                    start,
                    response=response,
                    order=order,
                    max_rounds=12,
                    rng=7,
                    schedule=schedule,
                    workers=workers,
                )
                for workers in WORKER_COUNTS
            ]
            _assert_identical_runs(runs)


def test_max_gain_workers_identical():
    """max_gain re-scores everyone per step — exactly what workers parallelize."""
    rng = np.random.default_rng(5)
    game = _random_game("euclidean", 8, rng)
    start = _random_profile(8, rng)
    runs = [
        run_dynamics(
            game, start, order="max_gain", max_rounds=8, workers=workers
        )
        for workers in (1, 2)
    ]
    _assert_identical_runs(runs)


def test_respond_many_matches_respond():
    """Parallel respond_many equals fresh per-agent serial scoring bit-exactly."""
    rng = np.random.default_rng(17)
    for response in ("best", "greedy", "single"):
        n = 7
        game = _random_game("general", n, rng)
        profile = _random_profile(n, rng)
        with IncrementalEngine(game, profile, workers=2) as parallel_engine:
            batch = parallel_engine.respond_many(range(n), response)
        serial_engine = IncrementalEngine(game, profile)
        for u, result in enumerate(batch):
            expected = serial_engine.respond(u, response)
            assert result.agent == expected.agent
            assert result.strategy == expected.strategy
            assert result.cost == expected.cost
            assert result.current_cost == expected.current_cost
            assert result.method == expected.method


def test_workers_validation():
    game = _random_game("metric", 5, np.random.default_rng(0))
    start = StrategyProfile.empty(5)
    with pytest.raises(ValueError, match="workers"):
        run_dynamics(game, start, workers=0)
    with pytest.raises(ValueError, match="incremental"):
        run_dynamics(game, start, engine="exact", workers=2)
    with pytest.raises(ValueError, match="workers"):
        IncrementalEngine(game, start, workers=0)
    with pytest.raises(ValueError, match="workers"):
        ParallelEvaluator.for_game(game, workers=0)


# ----------------------------------------------------------------------
# Double-buffered snapshots
# ----------------------------------------------------------------------
def test_double_buffering_identical_dynamics():
    """buffering in {single, double} x workers in {1, 2, 4}: one trajectory."""
    from repro.core import SimulationConfig

    rng = np.random.default_rng(37)
    game = _random_game("euclidean", 8, rng)
    start = _random_profile(8, rng)
    runs = [
        run_dynamics(
            game,
            start,
            rng=7,
            config=SimulationConfig(
                schedule="batched", workers=workers, buffering=buffering,
                max_rounds=10,
            ),
        )
        for workers in WORKER_COUNTS
        for buffering in ("single", "double")
    ]
    _assert_identical_runs(runs)


def test_double_buffering_under_slot_pressure():
    """Chunked dispatch (more distinct matrices than slots) stays bit-exact.

    With ``slots=2`` and seven distinct residual matrices the batch spans
    four chunks, so double buffering actually overlaps banks — and a bank
    must never be rewritten before its previous chunk is gathered, which
    the equality against the serial engine would expose immediately.
    """
    rng = np.random.default_rng(53)
    n = 7
    game = _random_game("general", n, rng)
    profile = _random_profile(n, rng, density=0.6)
    engine = IncrementalEngine(game, profile)
    # force distinct matrix objects per agent (copies break identity sharing)
    tasks = [(u, engine.residual(u).copy(), profile.strategy(u)) for u in range(n)]
    serial = [engine.respond(u, "best", d_rest=tasks[u][1]) for u in range(n)]
    for buffering in ("single", "double"):
        with ParallelEvaluator.for_game(
            game, workers=2, slots=2, buffering=buffering
        ) as evaluator:
            assert evaluator.buffering == buffering
            assert evaluator.evaluate(tasks, "best") == serial
            stats = evaluator.stats
            assert stats.backend == "local"
            assert stats.batches == 1 and stats.tasks == n


def test_buffering_validation():
    game = _random_game("metric", 5, np.random.default_rng(0))
    with pytest.raises(ValueError, match="buffering"):
        ParallelEvaluator.for_game(game, workers=2, buffering="triple")


# ----------------------------------------------------------------------
# Shared-memory snapshot round-trip
# ----------------------------------------------------------------------
def test_snapshot_roundtrip():
    """Create/attach views see bit-identical matrices, and close() unlinks."""
    rng = np.random.default_rng(3)
    n = 9
    weights = rng.uniform(0.5, 2.0, (n, n))
    weights[rng.random((n, n)) < 0.3] = np.inf  # inf non-edges must survive
    np.fill_diagonal(weights, 0.0)
    owner = SharedSnapshot.create(weights, slots=2)
    names = owner.meta()
    attached = SharedSnapshot.attach(names)
    assert np.array_equal(attached.weights, weights)  # inf-exact comparison
    residual = rng.uniform(0.0, 5.0, (n, n))
    residual[0, 1] = np.inf
    owner.write_slot(1, residual)
    assert np.array_equal(attached.slot_matrices[1], residual)
    assert attached.slot_matrices[1].tobytes() == residual.tobytes()
    attached.close()
    owner.close()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=names["weights_name"])
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=names["slots_name"])


def test_snapshot_create_partial_failure_releases_first_segment(monkeypatch):
    """If the slots allocation fails, the weights segment must not leak.

    ``SharedSnapshot.create`` allocates two segments; the first has no
    owner until both exist, so a failure in between (e.g. /dev/shm
    exhaustion) must close *and unlink* it before re-raising.
    """
    real = shared_memory.SharedMemory
    created: list[str] = []
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise OSError("injected: no space left on /dev/shm")
        segment = real(*args, **kwargs)
        created.append(segment.name)
        return segment

    monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
    with pytest.raises(OSError, match="injected"):
        SharedSnapshot.create(np.zeros((4, 4)), slots=2)
    assert len(created) == 1  # the weights segment was allocated...
    with pytest.raises(FileNotFoundError):  # ...and did not outlive the failure
        real(name=created[0])


def test_snapshot_attach_partial_failure_closes_first_segment(monkeypatch):
    """A half-attached snapshot must not pin the weights segment in a worker."""
    owner = SharedSnapshot.create(np.zeros((4, 4)), slots=1)
    names = owner.meta()
    real = shared_memory.SharedMemory
    closed: list[str] = []
    calls = {"n": 0}

    def flaky(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] == 2:
            raise FileNotFoundError("injected: slots segment vanished")
        segment = real(*args, **kwargs)
        original_close = segment.close

        def recording_close():
            closed.append(segment.name)
            original_close()

        segment.close = recording_close
        return segment

    monkeypatch.setattr(shared_memory, "SharedMemory", flaky)
    with pytest.raises(FileNotFoundError, match="injected"):
        SharedSnapshot.attach(names)
    assert closed == [names["weights_name"]]
    monkeypatch.undo()
    owner.close()


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
def _no_pool_children() -> bool:
    """No live worker processes remain (shutdown joins them synchronously)."""
    return mp.active_children() == []


def test_pool_lifecycle_lazy_reuse_teardown():
    """Pool appears on first use, is reused, and close() reaps it and the shm."""
    rng = np.random.default_rng(11)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]

    evaluator = ParallelEvaluator.for_game(game, workers=2)
    assert not evaluator.is_running  # lazy: nothing started yet
    evaluator.evaluate(tasks, "single")
    assert evaluator.is_running
    pool_before = evaluator._pool
    names = evaluator._snapshot.meta()
    evaluator.evaluate(tasks, "single")
    assert evaluator._pool is pool_before  # reused, not re-created
    evaluator.close()
    assert not evaluator.is_running
    assert _no_pool_children()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=names["weights_name"])
    evaluator.close()  # idempotent


def test_spawn_start_method_parity_and_cleanup():
    """The spawn start method yields the same results and clean teardown.

    Spawn children inherit the owner's resource tracker (the fd ships in
    the spawn preparation data), so attach-side registration stays a
    set-level no-op and close() unlinks each segment exactly once.
    """
    rng = np.random.default_rng(29)
    game = _random_game("euclidean", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]
    with ParallelEvaluator.for_game(game, workers=2, start_method="spawn") as evaluator:
        batch = evaluator.evaluate(tasks, "single")
        names = evaluator._snapshot.meta()
    serial = [engine.respond(u, "single") for u in range(6)]
    assert batch == serial
    assert _no_pool_children()
    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=names["weights_name"])


def test_engine_context_manager_reaps_pool():
    rng = np.random.default_rng(13)
    game = _random_game("metric", 6, rng)
    profile = _random_profile(6, rng)
    with IncrementalEngine(game, profile, workers=2) as engine:
        engine.respond_many(range(6), "single")
    assert _no_pool_children()


def test_run_dynamics_never_leaks_workers():
    """A parallel dynamics run (converged or not) leaves no worker behind."""
    rng = np.random.default_rng(19)
    game = _random_game("euclidean", 8, rng)
    start = _random_profile(8, rng)
    run_dynamics(game, start, schedule="batched", workers=2, max_rounds=6)
    assert _no_pool_children()


# ----------------------------------------------------------------------
# Proposal-cache regression: double-bought edges
# ----------------------------------------------------------------------
def test_double_owned_edge_drop_invalidates_co_owner():
    """Dropping one copy of a double-bought edge must re-score the co-owner.

    Agents 0 and 2 both buy the edge {0, 2}.  When agent 0 drops its copy
    the created network keeps the edge (agent 2 still buys it), so no
    network-level diff exists — but agent 2 is now the *sole* owner, its
    residual loses the edge, and its cached proposal (scored while the
    edge was co-owned) is stale.  The batched schedule must therefore
    follow the sequential trajectory exactly.
    """
    weights = np.array(
        [
            [0.0, 0.604, 0.677],
            [0.604, 0.0, 0.808],
            [0.677, 0.808, 0.0],
        ]
    )
    game = NetworkCreationGame(HostGraph(weights), 2.198)
    start = StrategyProfile.from_sets(3, [{2}, {0}, {0, 1}])
    order = [0, 2, 1, 0, 2, 1]
    seq = run_dynamics(
        game, start, response="single", order=order, max_rounds=10,
        schedule="sequential",
    )
    bat = run_dynamics(
        game, start, response="single", order=order, max_rounds=10,
        schedule="batched",
    )
    assert seq.final_profile == bat.final_profile
    assert seq.moves == bat.moves
    assert seq.social_costs == bat.social_costs


# ----------------------------------------------------------------------
# Pool-worker failure recovery (the SIGKILL regression)
# ----------------------------------------------------------------------
def test_pool_worker_sigkill_mid_batch_recovers_bit_identically():
    """SIGKILL a pool worker between batches: rebuild once, results unchanged.

    The regression this pins: a dead pool worker used to surface as an
    unrecoverable ``BrokenProcessPool`` that killed the whole sweep.  The
    evaluator must now detect the break, rebuild the pool exactly once,
    resubmit the in-flight chunks in order, and return results that are
    bit-identical to the serial engine.
    """
    import os
    import signal

    from repro.core.faults import Fault, FaultPlan, pool_fault_hook

    rng = np.random.default_rng(29)
    game = _random_game("euclidean", 7, rng)
    profile = _random_profile(7, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(7)]
    serial = [engine.respond(u, "best") for u in range(7)]
    plan = FaultPlan(seed=3, faults=(Fault(kind="kill_pool_worker", at_batch=1),))
    with ParallelEvaluator.for_game(game, workers=2) as evaluator:
        evaluator.fault_hook = pool_fault_hook(plan)
        batches = [evaluator.evaluate(tasks, "best") for _ in range(5)]
        for batch in batches:
            assert batch == serial
        stats = evaluator.stats
        assert stats.backend == "local"
        assert stats.retries >= 1  # the rebuild-and-resubmit path ran
        assert evaluator.pools_started >= 2  # original pool + one rebuild
        assert evaluator.is_running
    assert _no_pool_children()


def test_pool_kill_during_dynamics_is_bit_identical():
    """An armed pool-kill plan does not perturb a dynamics trajectory."""
    from repro.core.faults import preset
    from repro.core.session import GameSession, SimulationConfig

    rng = np.random.default_rng(37)
    game = _random_game("euclidean", 8, rng)
    start = _random_profile(8, rng)
    serial = run_dynamics(game, start, schedule="batched", max_rounds=10, rng=7)
    cfg = SimulationConfig(schedule="batched", workers=2, max_rounds=10)
    with GameSession(game, cfg) as session:
        session.arm_faults(preset("pool-kill"))
        chaotic = session.run(start, rng=7)
        stats = session.stats()
    _assert_identical_runs([serial, chaotic])
    fleet = stats.evaluator_stats
    assert fleet is not None and fleet.retries >= 1
    assert fleet.fallbacks == 0  # the pool healed in place: no rung descent
    assert _no_pool_children()


def test_pool_broken_twice_raises_clean_error(monkeypatch):
    """A pool that breaks again right after its one rebuild fails loudly.

    The rebuild-and-resubmit path retries exactly once per batch; if the
    rebuilt pool is broken too, the evaluator must surface a
    :class:`~repro.core.parallel.PoolBrokenError` (an
    :class:`~repro.core.parallel.EvaluatorError`, so the failover ladder
    can catch it) instead of looping or hanging.
    """
    import os
    import signal
    import time
    from concurrent.futures.process import BrokenProcessPool

    from repro.core.parallel import EvaluatorError, PoolBrokenError

    rng = np.random.default_rng(43)
    game = _random_game("metric", 6, rng)
    profile = _random_profile(6, rng)
    engine = IncrementalEngine(game, profile)
    tasks = [(u, engine.residual(u), profile.strategy(u)) for u in range(6)]

    class _BrokenPool:
        def submit(self, *args, **kwargs):
            raise BrokenProcessPool("pool is broken")

        def shutdown(self, *args, **kwargs):
            pass

    def sabotage(self):
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
        self._pool = _BrokenPool()
        self.pools_started += 1

    evaluator = ParallelEvaluator.for_game(game, workers=2)
    try:
        assert evaluator.evaluate(tasks, "single") == [
            engine.respond(u, "single") for u in range(6)
        ]
        monkeypatch.setattr(ParallelEvaluator, "_rebuild_pool", sabotage)
        os.kill(evaluator.worker_pids()[0], signal.SIGKILL)
        with pytest.raises(PoolBrokenError):
            evaluator.evaluate(tasks, "single")
        assert issubclass(PoolBrokenError, EvaluatorError)
    finally:
        evaluator.close()
    # The sabotaged shutdown joined the survivors of the SIGKILLed pool,
    # but a freshly reaped child can linger in active_children() briefly.
    deadline = time.monotonic() + 5.0
    while mp.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert _no_pool_children()
