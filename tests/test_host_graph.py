"""Tests for host graphs, constructors and model classification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.host_graph import HostGraph, ModelVariant


class TestConstruction:
    def test_unit_host(self):
        host = HostGraph.unit(4)
        assert host.n == 4
        assert host.weight(0, 1) == 1.0
        assert host.weight(2, 2) == 0.0
        assert host.classify() is ModelVariant.NCG

    def test_from_matrix_symmetrizes_and_zeroes_diagonal(self):
        w = np.array([[5.0, 1.0], [1.0, 7.0]])
        host = HostGraph.from_matrix(w)
        assert host.weight(0, 0) == 0.0
        assert host.weight(1, 1) == 0.0
        assert host.weight(0, 1) == 1.0

    def test_asymmetric_rejected(self):
        w = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(ValueError):
            HostGraph(w)

    def test_negative_rejected(self):
        w = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(ValueError):
            HostGraph(w)

    def test_nan_rejected(self):
        w = np.array([[0.0, np.nan], [np.nan, 0.0]])
        with pytest.raises(ValueError):
            HostGraph(w)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            HostGraph(np.zeros((2, 3)))

    def test_weights_are_read_only(self):
        host = HostGraph.unit(3)
        with pytest.raises(ValueError):
            host.weights[0, 1] = 5.0

    def test_one_two_host(self):
        host = HostGraph.one_two([(0, 1), (1, 2)], 4)
        assert host.weight(0, 1) == 1.0
        assert host.weight(0, 3) == 2.0
        assert host.classify() is ModelVariant.ONE_TWO

    def test_one_two_rejects_self_loop(self):
        with pytest.raises(ValueError):
            HostGraph.one_two([(1, 1)], 3)

    def test_one_infinity_host(self):
        host = HostGraph.one_infinity([(0, 1), (1, 2)], 3)
        assert host.weight(0, 1) == 1.0
        assert np.isinf(host.weight(0, 2))
        assert host.classify() is ModelVariant.ONE_INFINITY
        assert not host.is_metric()

    def test_edge_list_and_total_weight(self):
        host = HostGraph.one_two([(0, 1)], 3)
        edges = host.edge_list()
        assert len(edges) == 3
        assert host.total_weight() == pytest.approx(1 + 2 + 2)

    def test_equality_and_hash(self):
        a = HostGraph.unit(3)
        b = HostGraph.unit(3)
        c = HostGraph.unit(4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c


class TestPointConstructors:
    def test_euclidean_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        host = HostGraph.from_points(points, p=2)
        assert host.weight(0, 1) == pytest.approx(5.0)

    def test_manhattan_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        host = HostGraph.from_points(points, p=1)
        assert host.weight(0, 1) == pytest.approx(7.0)

    def test_chebyshev_distances(self):
        points = np.array([[0.0, 0.0], [3.0, 4.0]])
        host = HostGraph.from_points(points, p=np.inf)
        assert host.weight(0, 1) == pytest.approx(4.0)

    def test_general_p_norm(self):
        points = np.array([[0.0], [2.0]])
        host = HostGraph.from_points(points, p=3)
        assert host.weight(0, 1) == pytest.approx(2.0)

    def test_one_dimensional_input(self):
        host = HostGraph.from_points(np.array([0.0, 1.0, 3.0]))
        assert host.weight(0, 2) == pytest.approx(3.0)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            HostGraph.from_points(np.zeros((3, 2)), p=0.5)

    def test_point_hosts_are_metric(self):
        rng = np.random.default_rng(0)
        for p in (1, 2, 3, np.inf):
            host = HostGraph.from_points(rng.random((6, 3)), p=p)
            assert host.is_metric()

    def test_points_recorded(self):
        pts = np.array([[0.0, 1.0], [2.0, 3.0]])
        host = HostGraph.from_points(pts)
        assert np.allclose(host.points, pts)


class TestTreeConstructors:
    def test_tree_metric_closure(self):
        host = HostGraph.from_tree([(0, 1, 2.0), (1, 2, 3.0)], 3)
        assert host.weight(0, 2) == pytest.approx(5.0)
        assert host.classify() is ModelVariant.TREE
        assert host.tree_edges is not None

    def test_wrong_edge_count_rejected(self):
        with pytest.raises(ValueError):
            HostGraph.from_tree([(0, 1, 1.0)], 3)

    def test_disconnected_tree_rejected(self):
        with pytest.raises(ValueError):
            HostGraph.from_tree([(0, 1, 1.0), (0, 1, 2.0)], 3)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            HostGraph.from_tree([(0, 1, -1.0), (1, 2, 1.0)], 3)

    def test_from_networkx_tree(self):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        g.add_edge("a", "b", weight=2.0)
        g.add_edge("b", "c", weight=1.0)
        host = HostGraph.from_networkx(g)
        assert host.n == 3
        assert host.tree_edges is not None
        dists = sorted(host.weights[np.triu_indices(3, k=1)])
        assert dists == pytest.approx([1.0, 2.0, 3.0])

    def test_from_networkx_disconnected_rejected(self):
        nx = pytest.importorskip("networkx")
        g = nx.Graph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(ValueError):
            HostGraph.from_networkx(g)

    def test_to_networkx_roundtrip(self):
        host = HostGraph.from_tree([(0, 1, 2.0), (1, 2, 3.0)], 3)
        g = host.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 3
        assert g[0][2]["weight"] == pytest.approx(5.0)


class TestMetricStructure:
    def test_metric_closure_removes_violations(self):
        w = np.array([[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        host = HostGraph(w)
        assert not host.is_metric()
        closed = host.metric_closure()
        assert closed.is_metric()
        assert closed.weight(0, 1) == pytest.approx(2.0)

    def test_metric_violations_witnesses(self):
        w = np.array([[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        host = HostGraph(w)
        violations = host.metric_violations()
        assert len(violations) == 1
        v = violations[0]
        assert {v.u, v.v} == {0, 1}
        assert v.via == 2
        assert v.excess == pytest.approx(8.0)

    def test_tree_metric_four_point_condition(self):
        tree_host = HostGraph.from_tree([(0, 1, 1.0), (1, 2, 2.0), (1, 3, 3.0), (3, 4, 1.0)], 5)
        assert tree_host.is_tree_metric()

    def test_euclidean_square_is_not_tree_metric(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        host = HostGraph.from_points(points, p=2)
        assert not host.is_tree_metric()

    def test_host_distances_of_metric_host_equal_weights(self):
        host = HostGraph.from_points(np.random.default_rng(1).random((5, 2)))
        assert np.allclose(host.host_distances(), host.weights)


class TestClassification:
    def test_hierarchy_relation(self):
        assert ModelVariant.NCG.is_special_case_of(ModelVariant.METRIC)
        assert ModelVariant.ONE_TWO.is_special_case_of(ModelVariant.GENERAL)
        assert ModelVariant.TREE.is_special_case_of(ModelVariant.METRIC)
        assert not ModelVariant.METRIC.is_special_case_of(ModelVariant.TREE)
        assert not ModelVariant.GENERAL.is_special_case_of(ModelVariant.METRIC)
        assert ModelVariant.ONE_INFINITY.is_special_case_of(ModelVariant.GENERAL)
        assert not ModelVariant.ONE_INFINITY.is_special_case_of(ModelVariant.METRIC)

    def test_general_classification(self):
        w = np.array([[0.0, 10.0, 1.0], [10.0, 0.0, 1.0], [1.0, 1.0, 0.0]])
        assert HostGraph(w).classify() is ModelVariant.GENERAL

    def test_metric_classification(self):
        w = np.array([[0.0, 1.5, 1.0], [1.5, 0.0, 1.2], [1.0, 1.2, 0.0]])
        host = HostGraph(w)
        assert host.classify() in (ModelVariant.METRIC, ModelVariant.TREE)

    def test_single_node(self):
        assert HostGraph(np.zeros((1, 1))).classify() is ModelVariant.NCG

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=2, max_value=8), seed=st.integers(min_value=0, max_value=1000))
    def test_classification_is_consistent_with_hierarchy(self, n, seed):
        rng = np.random.default_rng(seed)
        host = HostGraph.from_points(rng.random((n, 2)), p=2)
        variant = host.classify()
        assert variant.is_special_case_of(ModelVariant.METRIC)
        assert host.is_metric()
