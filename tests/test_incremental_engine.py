"""Cross-oracle property tests: incremental engine vs the exact oracle.

The incremental best-response engine (:mod:`repro.core.incremental`) must be
*indistinguishable* from the from-scratch oracle
(:func:`repro.core.best_response.best_response_exact`) on every input: same
best-response strategies, same costs, same dynamics trajectories.  These
tests enforce that with seeded randomized sweeps across all model variants
of the paper (NCG, 1-2, 1-∞, tree, euclidean/Rd, metric, general) on
instances up to ``n = 30``.  Budgets are small by default and grow under
``--slow`` (see ``tests/conftest.py``).
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.core import (
    IncrementalEngine,
    NetworkCreationGame,
    StrategyProfile,
    best_response_exact,
    best_response_incremental,
    run_dynamics,
)
from repro.core.best_response import (
    best_single_move,
    enumerate_single_moves,
    greedy_response,
    residual_distances,
)
from repro.metrics.generators import (
    random_euclidean_host,
    random_general_host,
    random_metric_host,
    random_one_infinity_host,
    random_one_two_host,
    random_tree_host,
    unit_host,
)

VARIANTS = {
    "ncg": lambda n, rng: unit_host(n),
    "one_two": lambda n, rng: random_one_two_host(n, rng=rng),
    "one_infinity": lambda n, rng: random_one_infinity_host(n, rng=rng),
    "tree": lambda n, rng: random_tree_host(n, rng=rng),
    "euclidean": lambda n, rng: random_euclidean_host(n, rng=rng),
    "metric": lambda n, rng: random_metric_host(n, rng=rng),
    "general": lambda n, rng: random_general_host(n, rng=rng),
}


def _same_cost(a: float, b: float, tol: float = 1e-9) -> bool:
    """Equality treating two infinities (disconnected agents) as equal."""
    if np.isinf(a) or np.isinf(b):
        return np.isinf(a) and np.isinf(b)
    return abs(a - b) <= tol * max(1.0, abs(a))


def _same_matrix(a: np.ndarray, b: np.ndarray, tol: float = 1e-9) -> bool:
    fa, fb = np.isfinite(a), np.isfinite(b)
    return bool(np.array_equal(fa, fb) and np.allclose(a[fa], b[fb], atol=tol))


def _random_profile(n: int, rng: np.random.Generator, density: float = 0.35) -> StrategyProfile:
    owns = rng.random((n, n)) < density
    np.fill_diagonal(owns, False)
    return StrategyProfile(owns, copy=False, validate=False)


def _random_game(variant: str, n: int, rng: np.random.Generator) -> NetworkCreationGame:
    host = VARIANTS[variant](n, rng)
    return NetworkCreationGame(host, float(rng.uniform(0.2, 3.0)))


@pytest.mark.parametrize("variant", sorted(VARIANTS))
class TestBestResponseEquality:
    def test_full_candidate_sets(self, variant, property_budget):
        """Exact and incremental best responses coincide on small instances."""
        rng = np.random.default_rng(zlib.crc32(variant.encode()) % 2**32)
        for _ in range(property_budget):
            n = int(rng.integers(3, 9))
            game = _random_game(variant, n, rng)
            profile = _random_profile(n, rng)
            engine = IncrementalEngine(game, profile)
            for u in range(n):
                exact = best_response_exact(game, profile, u)
                incremental = engine.best_response(u)
                assert exact.strategy == incremental.strategy
                assert _same_cost(exact.cost, incremental.cost)
                assert _same_cost(exact.current_cost, incremental.current_cost)

    def test_restricted_candidates_up_to_n30(self, variant, property_budget):
        """Equality also holds on larger hosts with restricted candidate sets."""
        rng = np.random.default_rng((zlib.crc32(variant.encode()) + 1) % 2**32)
        for _ in range(max(2, property_budget // 2)):
            n = int(rng.integers(12, 31))
            game = _random_game(variant, n, rng)
            profile = StrategyProfile.star(n, center=int(rng.integers(0, n)))
            engine = IncrementalEngine(game, profile)
            for u in rng.choice(n, size=5, replace=False):
                u = int(u)
                candidates = [int(v) for v in rng.choice(n, size=8, replace=False) if v != u]
                exact = best_response_exact(game, profile, u, candidates=candidates)
                incremental = best_response_incremental(
                    game, profile, u, d_rest=engine.residual(u), candidates=candidates
                )
                assert exact.strategy == incremental.strategy
                assert _same_cost(exact.cost, incremental.cost)

    def test_dynamics_trajectories_identical(self, variant, property_budget):
        """Both engines produce the same moves, costs and final profiles."""
        rng = np.random.default_rng((zlib.crc32(variant.encode()) + 2) % 2**32)
        for trial in range(max(2, property_budget // 2)):
            n = int(rng.integers(3, 8))
            game = _random_game(variant, n, rng)
            profile = _random_profile(n, rng)
            response = ("best", "greedy", "single")[trial % 3]
            exact = run_dynamics(
                game, profile, response=response, engine="exact", max_rounds=20, rng=0
            )
            incremental = run_dynamics(
                game, profile, response=response, engine="incremental", max_rounds=20, rng=0
            )
            assert exact.converged == incremental.converged
            assert exact.moves == incremental.moves
            assert exact.final_profile == incremental.final_profile
            assert len(exact.social_costs) == len(incremental.social_costs)
            for a, b in zip(exact.social_costs, incremental.social_costs):
                assert _same_cost(a, b, tol=1e-7)


class TestEngineCaches:
    def test_distance_cache_matches_fresh_apsp_after_moves(self, property_budget):
        """The O(n^2) post-move update equals a from-scratch recomputation."""
        rng = np.random.default_rng(77)
        for _ in range(property_budget):
            n = int(rng.integers(4, 12))
            game = _random_game("metric", n, rng)
            engine = IncrementalEngine(game, _random_profile(n, rng))
            for u in list(range(n)) * 2:
                result = engine.best_response(u)
                if result.is_improving:
                    engine.apply(u, result.strategy)
                assert _same_matrix(engine.distances, game.distances(engine.profile))

    def test_residual_cache_invalidation_across_moves(self):
        """Cached residuals stay correct when other agents move between queries."""
        rng = np.random.default_rng(5)
        game = _random_game("euclidean", 7, rng)
        engine = IncrementalEngine(game, _random_profile(7, rng))
        for step in range(30):
            u = int(rng.integers(0, 7))
            assert _same_matrix(engine.residual(u), residual_distances(game, engine.profile, u))
            mover = int(rng.integers(0, 7))
            engine.apply(mover, engine.best_response(mover).strategy)

    def test_own_move_keeps_residual_valid(self):
        """An agent's residual is invariant under its own strategy changes."""
        rng = np.random.default_rng(9)
        game = _random_game("metric", 6, rng)
        engine = IncrementalEngine(game, _random_profile(6, rng))
        before = engine.residual(2)
        engine.apply(2, {0, 1})
        assert _same_matrix(engine.residual(2), before)
        assert _same_matrix(engine.residual(2), residual_distances(game, engine.profile, 2))

    def test_updated_distances_matches_apsp(self, property_budget):
        """CandidateEvaluator.updated_distances equals the network's true APSP."""
        rng = np.random.default_rng(13)
        for _ in range(property_budget):
            n = int(rng.integers(3, 10))
            game = _random_game("general", n, rng)
            profile = _random_profile(n, rng)
            u = int(rng.integers(0, n))
            evaluator = game.candidate_evaluator(profile, u)
            targets = [int(v) for v in rng.choice(n, size=min(3, n - 1), replace=False) if v != u]
            predicted = evaluator.updated_distances(targets)
            actual = game.distances(profile.with_strategy(u, targets))
            assert _same_matrix(predicted, actual, tol=1e-8)

    def test_infinite_edge_strategy_costs_inf_even_at_alpha_zero(self):
        """Buying an absent (inf-weight) host edge costs inf, never NaN.

        Regression: with alpha == 0 a naive ``alpha * w`` yields ``0 * inf =
        NaN``, silently de-synchronising the incremental engine's
        current-cost path from the exact oracle on 1-inf hosts.
        """
        rng = np.random.default_rng(3)
        host = VARIANTS["one_infinity"](6, rng)
        w = host.weights
        missing = [
            (u, v) for u in range(6) for v in range(6) if u != v and np.isinf(w[u, v])
        ]
        assert missing, "generator produced a complete host; pick another seed"
        u, v = missing[0]
        for alpha in (0.0, 1.0):
            game = NetworkCreationGame(host, alpha)
            profile = StrategyProfile.from_sets(6, {u: [v]})
            evaluator = game.candidate_evaluator(profile, u)
            assert np.isinf(evaluator.strategy_cost([v]))
            assert np.isinf(game.agent_cost(profile, u))
            exact = best_response_exact(game, profile, u)
            incremental = IncrementalEngine(game, profile).best_response(u)
            assert exact.strategy == incremental.strategy
            assert _same_cost(exact.current_cost, incremental.current_cost)
            assert not np.isnan(incremental.current_cost)

    def test_greedy_with_injected_residual_matches_fresh(self, property_budget):
        rng = np.random.default_rng(21)
        for _ in range(property_budget):
            n = int(rng.integers(3, 9))
            game = _random_game("tree", n, rng)
            profile = _random_profile(n, rng)
            u = int(rng.integers(0, n))
            d_rest = residual_distances(game, profile, u)
            fresh = greedy_response(game, profile, u)
            cached = greedy_response(game, profile, u, d_rest=d_rest)
            assert fresh.strategy == cached.strategy
            assert _same_cost(fresh.cost, cached.cost)
            fresh_move = best_single_move(game, profile, u)
            cached_move = best_single_move(game, profile, u, d_rest=d_rest)
            assert fresh_move.kind == cached_move.kind
            assert fresh_move.gain == pytest.approx(cached_move.gain)
            assert len(enumerate_single_moves(game, profile, u, d_rest=d_rest)) == len(
                enumerate_single_moves(game, profile, u)
            )


@pytest.mark.slow
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_slow_exhaustive_equality_sweep(variant):
    """Large-budget version of the equality sweep, run under ``--slow``."""
    rng = np.random.default_rng((zlib.crc32(variant.encode()) + 3) % 2**32)
    for _ in range(60):
        n = int(rng.integers(3, 10))
        game = _random_game(variant, n, rng)
        profile = _random_profile(n, rng, density=float(rng.uniform(0.1, 0.6)))
        engine = IncrementalEngine(game, profile)
        for u in range(n):
            exact = best_response_exact(game, profile, u)
            incremental = engine.best_response(u)
            assert exact.strategy == incremental.strategy
            assert _same_cost(exact.cost, incremental.cost)
