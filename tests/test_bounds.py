"""Tests for the closed-form bounds of Table 1."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds


class TestValues:
    def test_metric_poa_upper(self):
        assert bounds.metric_poa_upper(2.0) == pytest.approx(2.0)
        assert bounds.metric_poa_upper(0.0) == pytest.approx(1.0)

    def test_general_poa_upper_is_square_of_metric(self):
        for alpha in (0.5, 1.0, 3.0, 10.0):
            assert bounds.general_poa_upper(alpha) == pytest.approx(
                bounds.metric_poa_upper(alpha) ** 2
            )

    def test_general_poa_lower_equals_metric_tight_bound(self):
        assert bounds.general_poa_lower(4.0) == pytest.approx(bounds.tree_poa_tight(4.0))

    def test_one_two_regimes(self):
        assert bounds.one_two_poa_upper(0.25) == pytest.approx(1.0)
        assert bounds.one_two_poa_upper(0.75) == pytest.approx(3.0 / 2.75)
        assert bounds.one_two_poa_upper(1.0) == pytest.approx(1.5)
        assert bounds.one_two_poa_upper(4.0) == pytest.approx(10.0)
        assert bounds.one_two_poa_lower(0.25) == pytest.approx(1.0)
        assert bounds.one_two_poa_lower(1.0) == pytest.approx(1.5)

    def test_one_two_sqrt_alpha_shape(self):
        assert bounds.one_two_sqrt_alpha_poa_upper(4.0, 100) == pytest.approx(10.0)

    def test_theorem18_formula(self):
        # alpha = 1: (3+24+40+24)/(1+10+32+24) = 91/67
        assert bounds.rd_pnorm_poa_lower_4node(1.0) == pytest.approx(91.0 / 67.0)

    def test_theorem19_formula(self):
        assert bounds.rd_one_norm_poa_lower(2.0, 2) == pytest.approx(1.75)
        with pytest.raises(ValueError):
            bounds.rd_one_norm_poa_lower(1.0, 0)

    def test_spanner_and_approximation_factors(self):
        assert bounds.ne_spanner_factor(3.0) == pytest.approx(4.0)
        assert bounds.opt_spanner_factor(3.0) == pytest.approx(2.5)
        assert bounds.ae_to_ge_factor(2.0) == pytest.approx(3.0)
        assert bounds.ge_to_ne_factor() == pytest.approx(3.0)
        assert bounds.ae_to_ne_factor(2.0) == pytest.approx(9.0)

    def test_classical_ncg_bounds(self):
        assert bounds.ncg_poa_upper_fabrikant(9.0) == pytest.approx(5.0)
        assert bounds.one_infinity_poa_tight_order(32.0) == pytest.approx(2.0)


class TestShapeProperties:
    @settings(max_examples=50, deadline=None)
    @given(alpha=st.floats(min_value=0.0, max_value=100.0))
    def test_metric_bound_below_general_bound(self, alpha):
        assert bounds.metric_poa_upper(alpha) <= bounds.general_poa_upper(alpha) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(alpha=st.floats(min_value=0.01, max_value=100.0), d=st.integers(1, 50))
    def test_theorem19_below_metric_upper_bound(self, alpha, d):
        """The 1-norm lower bound never exceeds the (alpha+2)/2 upper bound."""
        assert bounds.rd_one_norm_poa_lower(alpha, d) <= bounds.metric_poa_upper(alpha) + 1e-12

    @settings(max_examples=50, deadline=None)
    @given(alpha=st.floats(min_value=0.01, max_value=100.0))
    def test_theorem19_increases_with_dimension(self, alpha):
        values = [bounds.rd_one_norm_poa_lower(alpha, d) for d in (1, 2, 5, 20)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @settings(max_examples=50, deadline=None)
    @given(alpha=st.floats(min_value=0.01, max_value=100.0))
    def test_theorem19_limit_is_metric_bound(self, alpha):
        limit = bounds.rd_one_norm_poa_lower(alpha, 10_000)
        assert limit == pytest.approx(bounds.metric_poa_upper(alpha), rel=1e-2)

    @settings(max_examples=50, deadline=None)
    @given(alpha=st.floats(min_value=0.0, max_value=100.0))
    def test_theorem18_between_one_and_three(self, alpha):
        value = bounds.rd_pnorm_poa_lower_4node(alpha)
        assert 1.0 - 1e-12 <= value <= 3.0 + 1e-12

    def test_theorem18_limit_is_three(self):
        assert bounds.rd_pnorm_poa_lower_4node(1e9) == pytest.approx(3.0, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(alpha=st.floats(min_value=0.0, max_value=0.499))
    def test_one_two_poa_is_one_below_half(self, alpha):
        assert bounds.one_two_poa_upper(alpha) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(alpha=st.floats(min_value=0.5, max_value=0.999))
    def test_one_two_upper_matches_lower_in_tight_regime(self, alpha):
        assert bounds.one_two_poa_upper(alpha) == pytest.approx(bounds.one_two_poa_lower(alpha))

    @settings(max_examples=30, deadline=None)
    @given(alpha=st.floats(min_value=0.0, max_value=50.0))
    def test_spanner_factors_ordering(self, alpha):
        """Lemma 2's factor is at most Lemma 1's factor (optima are tighter spanners)."""
        assert bounds.opt_spanner_factor(alpha) <= bounds.ne_spanner_factor(alpha) + 1e-12
