"""Tests for the Theorem 4 vertex-cover reduction and the VC solvers."""

from __future__ import annotations

import pytest

from repro.core.best_response import best_response_exact
from repro.core.host_graph import ModelVariant
from repro.reductions.vertex_cover import (
    VertexCoverInstance,
    agent_u_cost_formula,
    exact_minimum_vertex_cover,
    greedy_vertex_cover,
    is_vertex_cover,
    nash_decision_reduction,
    strategy_to_vertex_cover,
    u_best_response_cover,
)

TRIANGLE = VertexCoverInstance.from_edges([(0, 1), (1, 2), (0, 2)])
PATH4 = VertexCoverInstance.from_edges([(0, 1), (1, 2), (2, 3)])
STAR = VertexCoverInstance.from_edges([(0, 1), (0, 2), (0, 3), (0, 4)])
CYCLE5 = VertexCoverInstance.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])


class TestSolvers:
    @pytest.mark.parametrize(
        "instance,expected",
        [(TRIANGLE, 2), (PATH4, 2), (STAR, 1), (CYCLE5, 3)],
    )
    def test_exact_minimum_sizes(self, instance, expected):
        cover = exact_minimum_vertex_cover(instance)
        assert is_vertex_cover(instance, cover)
        assert len(cover) == expected

    @pytest.mark.parametrize("instance", [TRIANGLE, PATH4, STAR, CYCLE5])
    def test_greedy_is_cover_and_2_approx(self, instance):
        greedy = greedy_vertex_cover(instance)
        assert is_vertex_cover(instance, greedy)
        assert len(greedy) <= 2 * len(exact_minimum_vertex_cover(instance))

    def test_empty_graph(self):
        empty = VertexCoverInstance(3, ())
        assert exact_minimum_vertex_cover(empty) == set()
        assert greedy_vertex_cover(empty) == set()

    def test_instance_validation(self):
        with pytest.raises(ValueError):
            VertexCoverInstance(3, ((0, 0),))
        with pytest.raises(ValueError):
            VertexCoverInstance(2, ((0, 5),))


class TestGadgetConstruction:
    def test_gadget_shape(self):
        gadget = nash_decision_reduction(PATH4, [1, 2])
        N, m = 4, 3
        assert gadget.game.n == N + 2 * m + 1
        assert gadget.game.host.classify() is ModelVariant.ONE_TWO
        assert gadget.u == N + 2 * m
        # u buys exactly the cover vertices
        assert gadget.profile.strategy(gadget.u) == frozenset(
            gadget.vertex_nodes[c] for c in (1, 2)
        )

    def test_rejects_non_cover(self):
        with pytest.raises(ValueError):
            nash_decision_reduction(PATH4, [0])

    def test_every_other_agent_plays_best_response(self):
        """The proof requires all agents except u to already be at a best response."""
        gadget = nash_decision_reduction(PATH4, [1, 2])
        for agent in range(gadget.game.n):
            if agent == gadget.u:
                continue
            result = best_response_exact(gadget.game, gadget.profile, agent)
            assert result.improvement <= 1e-9, f"agent {agent} can improve"

    def test_cost_formula_matches_game_cost(self):
        gadget = nash_decision_reduction(PATH4, [1, 2])
        cost = gadget.game.agent_cost(gadget.profile, gadget.u)
        assert cost == pytest.approx(agent_u_cost_formula(gadget, 2))

    def test_strategy_to_vertex_cover_ignores_edge_nodes(self):
        gadget = nash_decision_reduction(PATH4, [1, 2])
        pj = gadget.edge_nodes[0][0]
        mapped = strategy_to_vertex_cover(gadget, [gadget.vertex_nodes[1], pj])
        assert mapped == {1}


class TestEquivalence:
    """Agent u improves iff a smaller vertex cover exists (Theorem 4)."""

    @pytest.mark.parametrize(
        "instance,cover,expect_improvement",
        [
            (TRIANGLE, [0, 1], False),       # minimum cover -> stable
            (TRIANGLE, [0, 1, 2], True),     # oversized cover -> improvable
            (PATH4, [1, 2], False),
            (PATH4, [0, 1, 2], True),
            (STAR, [0], False),
            (STAR, [1, 2, 3, 4], True),
            (CYCLE5, [0, 2, 3], False),
            (CYCLE5, [0, 1, 2, 3], True),
        ],
    )
    def test_improving_move_iff_smaller_cover(self, instance, cover, expect_improvement):
        gadget = nash_decision_reduction(instance, cover)
        response = best_response_exact(gadget.game, gadget.profile, gadget.u)
        assert (response.improvement > 1e-9) == expect_improvement

    @pytest.mark.parametrize("instance", [TRIANGLE, PATH4, STAR, CYCLE5])
    def test_best_response_encodes_minimum_cover(self, instance):
        trivial_cover = list(range(instance.num_vertices))
        gadget = nash_decision_reduction(instance, trivial_cover)
        cover = u_best_response_cover(gadget)
        assert is_vertex_cover(instance, cover)
        assert len(cover) == len(exact_minimum_vertex_cover(instance))

    def test_u_cost_decreases_exactly_by_cover_difference(self):
        oversized = nash_decision_reduction(PATH4, [0, 1, 2])
        response = best_response_exact(oversized.game, oversized.profile, oversized.u)
        # cost formula: improvement = k - k_min
        assert response.improvement == pytest.approx(3 - 2)
