"""Tests for Price-of-Anarchy estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import metric_poa_upper
from repro.core.equilibria import is_nash_equilibrium
from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.poa import enumerate_nash_equilibria, estimate_poa, ratio, sample_equilibria
from repro.core.strategy import StrategyProfile


class TestRatio:
    def test_ratio_of_equal_profiles_is_one(self, small_euclidean_game):
        star = StrategyProfile.star(5, center=0)
        assert ratio(small_euclidean_game, star, star) == pytest.approx(1.0)

    def test_ratio_orders_costs(self, small_euclidean_game):
        star = StrategyProfile.star(5, center=0)
        complete = StrategyProfile.complete(5)
        r = ratio(small_euclidean_game, star, complete)
        assert r == pytest.approx(
            small_euclidean_game.social_cost(star) / small_euclidean_game.social_cost(complete)
        )


class TestSampling:
    def test_sampled_profiles_are_nash(self, small_euclidean_game, rng):
        equilibria = sample_equilibria(small_euclidean_game, num_samples=3, rng=rng)
        assert equilibria
        for profile in equilibria:
            assert is_nash_equilibrium(small_euclidean_game, profile)

    def test_greedy_verification_mode(self, small_euclidean_game, rng):
        equilibria = sample_equilibria(
            small_euclidean_game, num_samples=2, verify="greedy", rng=rng
        )
        assert equilibria

    def test_none_verification_mode(self, small_euclidean_game, rng):
        equilibria = sample_equilibria(
            small_euclidean_game, num_samples=2, verify="none", rng=rng
        )
        assert equilibria

    def test_unknown_verification_mode(self, small_euclidean_game, rng):
        with pytest.raises(ValueError):
            sample_equilibria(small_euclidean_game, num_samples=1, verify="bogus", rng=rng)

    def test_deduplicates_profiles(self, small_tree_game, rng):
        equilibria = sample_equilibria(small_tree_game, num_samples=5, rng=rng)
        keys = [p.canonical_key() for p in equilibria]
        assert len(keys) == len(set(keys))


class TestEnumeration:
    def test_small_unit_instance(self):
        game = NetworkCreationGame(HostGraph.unit(3), alpha=2.0)
        equilibria = enumerate_nash_equilibria(game, max_nodes=3)
        assert equilibria
        for profile in equilibria:
            assert is_nash_equilibrium(game, profile)
        # every enumerated NE must be connected (disconnected profiles have infinite cost)
        for profile in equilibria:
            assert game.is_connected(profile)

    def test_enumeration_guard(self):
        game = NetworkCreationGame(HostGraph.unit(6), alpha=1.0)
        with pytest.raises(ValueError):
            enumerate_nash_equilibria(game, max_nodes=4)

    def test_sampling_finds_subset_of_enumeration_costs(self):
        """Sampled equilibrium costs must be realisable by enumerated equilibria."""
        game = NetworkCreationGame(HostGraph.unit(3), alpha=2.0)
        enumerated = enumerate_nash_equilibria(game, max_nodes=3)
        enum_costs = {round(game.social_cost(p), 6) for p in enumerated}
        sampled = sample_equilibria(game, num_samples=3, rng=np.random.default_rng(0))
        for profile in sampled:
            assert round(game.social_cost(profile), 6) in enum_costs


class TestEstimatePoA:
    def test_estimate_respects_metric_upper_bound(self, small_euclidean_game, rng):
        estimate = estimate_poa(small_euclidean_game, num_samples=4, rng=rng)
        assert estimate.equilibria_found > 0
        assert estimate.optimum.exact
        poa = estimate.price_of_anarchy
        assert 1.0 - 1e-9 <= poa <= metric_poa_upper(small_euclidean_game.alpha) + 1e-6

    def test_price_of_stability_at_most_poa(self, small_euclidean_game, rng):
        estimate = estimate_poa(small_euclidean_game, num_samples=4, rng=rng)
        assert estimate.price_of_stability <= estimate.price_of_anarchy + 1e-9

    def test_extra_equilibria_raise_estimate(self, small_tree_game):
        from repro.core.equilibria import tree_profile_from_host

        tree = tree_profile_from_host(small_tree_game)
        expensive_star = StrategyProfile.star(5, center=2)
        estimate = estimate_poa(
            small_tree_game,
            num_samples=0,
            extra_equilibria=[tree, expensive_star],
        )
        assert estimate.worst_equilibrium_cost >= small_tree_game.social_cost(tree)

    def test_tree_instance_price_of_stability_is_one(self, small_tree_game, rng):
        """Cor. 3 consequence: the best equilibrium of a T-GNCG costs exactly OPT."""
        from repro.core.equilibria import tree_profile_from_host

        tree = tree_profile_from_host(small_tree_game)
        estimate = estimate_poa(
            small_tree_game, num_samples=3, rng=rng, extra_equilibria=[tree]
        )
        assert estimate.price_of_stability == pytest.approx(1.0)
