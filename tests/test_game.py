"""Tests for the GNCG cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.strategy import StrategyProfile


def _random_profile(n: int, rng: np.random.Generator, density: float = 0.4) -> StrategyProfile:
    owns = np.triu(rng.random((n, n)) < density, k=1)
    return StrategyProfile(owns)


class TestBasics:
    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            NetworkCreationGame(HostGraph.unit(3), -1.0)

    def test_with_alpha(self):
        game = NetworkCreationGame(HostGraph.unit(3), 1.0)
        other = game.with_alpha(2.5)
        assert other.alpha == 2.5
        assert other.host is game.host

    def test_profile_size_mismatch_rejected(self):
        game = NetworkCreationGame(HostGraph.unit(3), 1.0)
        with pytest.raises(ValueError):
            game.social_cost(StrategyProfile.empty(4))


class TestCostsOnUnitStar:
    """A unit-weight star on n nodes has closed-form costs."""

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_center_cost(self, n):
        game = NetworkCreationGame(HostGraph.unit(n), alpha=2.0)
        star = StrategyProfile.star(n, center=0)
        # center buys n-1 edges at alpha each, distances 1 to everyone
        assert game.edge_cost(star, 0) == pytest.approx(2.0 * (n - 1))
        assert game.distance_cost(star, 0) == pytest.approx(n - 1)
        assert game.agent_cost(star, 0) == pytest.approx(2.0 * (n - 1) + (n - 1))

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_leaf_cost(self, n):
        game = NetworkCreationGame(HostGraph.unit(n), alpha=2.0)
        star = StrategyProfile.star(n, center=0)
        # leaves own nothing; distance 1 to center, 2 to other n-2 leaves
        assert game.edge_cost(star, 1) == 0.0
        assert game.distance_cost(star, 1) == pytest.approx(1 + 2 * (n - 2))

    @pytest.mark.parametrize("n", [3, 5, 8])
    def test_social_cost_formula(self, n):
        game = NetworkCreationGame(HostGraph.unit(n), alpha=2.0)
        star = StrategyProfile.star(n, center=0)
        # alpha*(n-1) edge weight + sum of pairwise distances (ordered):
        # 2*(n-1)*1 for center pairs + (n-1)(n-2)*2 for leaf pairs
        expected = 2.0 * (n - 1) + 2 * (n - 1) + 2 * (n - 1) * (n - 2)
        assert game.social_cost(star) == pytest.approx(expected)

    def test_social_cost_parts(self):
        game = NetworkCreationGame(HostGraph.unit(4), alpha=3.0)
        star = StrategyProfile.star(4, center=0)
        edge, dist = game.social_cost_parts(star)
        assert edge == pytest.approx(9.0)
        assert dist == pytest.approx(2 * 3 + 2 * 3 * 2)
        assert edge + dist == pytest.approx(game.social_cost(star))


class TestWeightedCosts:
    def test_weighted_edge_and_distance_cost(self, small_tree_game):
        game = small_tree_game
        profile = StrategyProfile.from_sets(5, [[1], [2], [], [], []])
        # agent 0 buys edge to 1 (weight 1); network is a path 0-1-2 plus isolated 3,4
        assert game.edge_cost(profile, 0) == pytest.approx(2.0 * 1.0)
        assert np.isinf(game.distance_cost(profile, 0))
        assert not game.is_connected(profile)

    def test_distances_use_created_network_not_host(self, small_tree_game):
        game = small_tree_game
        # connect everything as a path 0-1-2, 1-3, 3-4 (i.e. the host tree)
        profile = StrategyProfile.from_sets(5, [[1], [2, 3], [], [4], []])
        d = game.distances(profile)
        # host tree distances: d(0,2)=3, d(2,4)=4
        assert d[0, 2] == pytest.approx(3.0)
        assert d[2, 4] == pytest.approx(4.0)
        assert game.is_connected(profile)

    def test_double_bought_edge_charged_twice(self):
        host = HostGraph.from_matrix([[0.0, 4.0], [4.0, 0.0]])
        game = NetworkCreationGame(host, alpha=1.0)
        both = StrategyProfile.from_owned_edges(2, [(0, 1), (1, 0)])
        single = StrategyProfile.from_owned_edges(2, [(0, 1)])
        assert game.social_cost(both) == pytest.approx(game.social_cost(single) + 4.0)

    def test_all_agent_costs_matches_individual(self, small_euclidean_game, rng):
        game = small_euclidean_game
        profile = _random_profile(game.n, rng, density=0.6)
        all_costs = game.all_agent_costs(profile)
        for u in range(game.n):
            assert all_costs[u] == pytest.approx(game.agent_cost(profile, u))

    def test_social_cost_is_sum_of_agent_costs(self, small_euclidean_game, rng):
        game = small_euclidean_game
        profile = _random_profile(game.n, rng, density=0.7)
        total = sum(game.agent_cost(profile, u) for u in range(game.n))
        assert game.social_cost(profile) == pytest.approx(total)

    def test_infinite_weight_edge_cost(self):
        host = HostGraph.one_infinity([(0, 1)], 3)
        game = NetworkCreationGame(host, alpha=1.0)
        profile = StrategyProfile.from_owned_edges(3, [(0, 2)])
        assert np.isinf(game.edge_cost(profile, 0))
        assert np.isinf(game.all_agent_costs(profile)[0])

    def test_social_cost_of_edges_matches_profile(self, small_euclidean_game):
        game = small_euclidean_game
        edges = [(0, 1), (1, 2), (2, 3), (3, 4)]
        profile = StrategyProfile.from_undirected_edges(5, edges)
        assert game.social_cost_of_edges(edges) == pytest.approx(game.social_cost(profile))

    def test_social_cost_of_edges_rejects_self_loop(self, small_euclidean_game):
        with pytest.raises(ValueError):
            small_euclidean_game.social_cost_of_edges([(1, 1)])


class TestImprovingMoves:
    def test_deviation_gain_sign(self, small_euclidean_game):
        game = small_euclidean_game
        star = StrategyProfile.star(5, center=0)
        # dropping all edges disconnects the center -> negative gain
        assert game.deviation_gain(star, 0, []) == -np.inf or game.deviation_gain(star, 0, []) < 0
        # a leaf adding a redundant expensive edge cannot gain
        gain = game.deviation_gain(star, 1, [2])
        assert gain <= 1e-9

    def test_is_improving_move_detects_connection(self):
        host = HostGraph.unit(3)
        game = NetworkCreationGame(host, alpha=1.0)
        profile = StrategyProfile.from_sets(3, [[1], [], []])
        assert game.is_improving_move(profile, 2, [0])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.1, max_value=5.0))
    def test_agent_cost_decomposition(self, seed, alpha):
        rng = np.random.default_rng(seed)
        host = HostGraph.from_points(rng.random((5, 2)))
        game = NetworkCreationGame(host, alpha)
        profile = _random_profile(5, rng, density=0.8)
        for u in range(5):
            breakdown = game.agent_cost_breakdown(profile, u)
            assert breakdown.total == pytest.approx(game.agent_cost(profile, u))
            assert breakdown.edge_cost >= 0.0
