"""Tests for the Theorems 13/16 set-cover reductions and the SC solvers."""

from __future__ import annotations

import pytest

from repro.core.best_response import best_response_exact
from repro.core.host_graph import ModelVariant
from repro.reductions.set_cover import (
    SetCoverInstance,
    euclidean_set_cover_reduction,
    exact_set_cover,
    greedy_set_cover,
    is_cover,
    strategy_to_cover,
    tree_set_cover_reduction,
    u_best_response_cover,
)

SIMPLE = SetCoverInstance.from_lists(4, [[0, 1], [2, 3], [1, 2], [3]])
OVERLAPPING = SetCoverInstance.from_lists(5, [[0, 1, 2], [2, 3], [3, 4], [0, 4], [1]])
SINGLETONS = SetCoverInstance.from_lists(3, [[0], [1], [2]])


class TestSolvers:
    @pytest.mark.parametrize(
        "instance,optimum_size",
        [(SIMPLE, 2), (OVERLAPPING, 2), (SINGLETONS, 3)],
    )
    def test_exact_solver(self, instance, optimum_size):
        cover = exact_set_cover(instance)
        assert is_cover(instance, cover)
        assert len(cover) == optimum_size

    @pytest.mark.parametrize("instance", [SIMPLE, OVERLAPPING, SINGLETONS])
    def test_greedy_solver_produces_cover(self, instance):
        cover = greedy_set_cover(instance)
        assert is_cover(instance, cover)
        assert len(cover) >= len(exact_set_cover(instance))

    def test_instance_validation(self):
        with pytest.raises(ValueError):
            SetCoverInstance.from_lists(3, [[0], [1]])  # element 2 uncovered
        with pytest.raises(ValueError):
            SetCoverInstance.from_lists(2, [[0, 1], []])  # empty subset
        with pytest.raises(ValueError):
            SetCoverInstance(0, ())


class TestTreeGadget:
    def test_gadget_shape_and_variant(self):
        gadget = tree_set_cover_reduction(SIMPLE)
        k, m = 4, 4
        assert gadget.game.n == 2 + 2 * m + k
        assert gadget.kind == "tree"
        assert gadget.game.host.tree_edges is not None
        assert gadget.game.host.classify() is ModelVariant.TREE

    def test_agent_u_owns_nothing(self):
        gadget = tree_set_cover_reduction(SIMPLE)
        assert gadget.profile.strategy(gadget.u) == frozenset()

    def test_distances_match_paper_construction(self):
        gadget = tree_set_cover_reduction(SIMPLE, L=100.0, beta=10.0, eps=0.01)
        d = gadget.game.distances(gadget.profile)
        # d_G(u, a_i) = 2L - beta and d_G(u, p_j) >= 3L - beta - O(eps)
        for a in gadget.set_nodes:
            assert d[gadget.u, a] == pytest.approx(2 * 100.0 - 10.0, rel=1e-6)
        for p in gadget.element_nodes:
            assert d[gadget.u, p] >= 3 * 100.0 - 10.0 - 1.0

    @pytest.mark.parametrize("instance", [SIMPLE, OVERLAPPING])
    def test_best_response_is_minimum_cover(self, instance):
        gadget = tree_set_cover_reduction(instance)
        cover = u_best_response_cover(gadget)
        assert is_cover(instance, cover)
        assert len(cover) == len(exact_set_cover(instance))

    def test_parameter_guards(self):
        with pytest.raises(ValueError):
            tree_set_cover_reduction(SIMPLE, beta=0.0001, eps=0.01)
        with pytest.raises(ValueError):
            tree_set_cover_reduction(SIMPLE, L=1.0, beta=10.0)


class TestEuclideanGadget:
    def test_gadget_shape_and_geometry(self):
        gadget = euclidean_set_cover_reduction(SIMPLE, L=100.0, beta=10.0)
        k, m = 4, 4
        assert gadget.game.n == 1 + 2 * m + k
        assert gadget.kind == "euclidean"
        host = gadget.game.host
        for a in gadget.set_nodes:
            assert host.weight(gadget.u, a) == pytest.approx(100.0, rel=1e-9)
        for p in gadget.element_nodes:
            assert host.weight(gadget.u, p) == pytest.approx(200.0, rel=1e-9)
        for b in gadget.blocker_nodes:
            assert host.weight(gadget.u, b) == pytest.approx(45.0, rel=1e-9)

    def test_set_nodes_are_close_together(self):
        gadget = euclidean_set_cover_reduction(OVERLAPPING, L=100.0, beta=10.0, eps=0.01)
        host = gadget.game.host
        for a in gadget.set_nodes:
            for b in gadget.set_nodes:
                assert host.weight(a, b) <= 0.01 + 1e-9

    def test_graph_distances_match_paper(self):
        gadget = euclidean_set_cover_reduction(SIMPLE, L=100.0, beta=10.0)
        d = gadget.game.distances(gadget.profile)
        for a in gadget.set_nodes:
            assert d[gadget.u, a] == pytest.approx(2 * 100.0 - 10.0, rel=1e-6)

    @pytest.mark.parametrize("instance", [SIMPLE, OVERLAPPING])
    def test_best_response_is_minimum_cover(self, instance):
        gadget = euclidean_set_cover_reduction(instance)
        cover = u_best_response_cover(gadget)
        assert is_cover(instance, cover)
        assert len(cover) == len(exact_set_cover(instance))

    def test_parameter_guards(self):
        with pytest.raises(ValueError):
            euclidean_set_cover_reduction(SIMPLE, beta=0.0001, eps=1.0)
        with pytest.raises(ValueError):
            euclidean_set_cover_reduction(SIMPLE, L=1.0, beta=10.0)


class TestMapping:
    def test_strategy_to_cover_ignores_other_nodes(self):
        gadget = tree_set_cover_reduction(SIMPLE)
        strategy = {gadget.set_nodes[1], gadget.element_nodes[0], gadget.blocker_nodes[0]}
        assert strategy_to_cover(gadget, strategy) == {1}

    def test_best_response_never_buys_element_nodes(self):
        """The proofs show u never buys edges towards element nodes."""
        for gadget in (tree_set_cover_reduction(SIMPLE), euclidean_set_cover_reduction(SIMPLE)):
            result = best_response_exact(gadget.game, gadget.profile, gadget.u, max_candidates=24)
            assert not (set(result.strategy) & set(gadget.element_nodes))
