"""Tests for strategy profiles (the ownership-matrix representation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strategy import StrategyProfile


class TestConstruction:
    def test_empty(self):
        p = StrategyProfile.empty(4)
        assert p.n == 4
        assert p.num_edges() == 0
        assert p.edges() == []

    def test_from_sets_sequence(self):
        p = StrategyProfile.from_sets(3, [[1], [2], []])
        assert p.owns_edge(0, 1)
        assert p.owns_edge(1, 2)
        assert not p.owns_edge(2, 1)
        assert p.has_edge(2, 1)

    def test_from_sets_mapping(self):
        p = StrategyProfile.from_sets(4, {2: [0, 3]})
        assert p.strategy(2) == frozenset({0, 3})
        assert p.strategy(0) == frozenset()

    def test_from_sets_rejects_self_loop(self):
        with pytest.raises(ValueError):
            StrategyProfile.from_sets(3, [[0], [], []])

    def test_from_sets_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            StrategyProfile.from_sets(3, [[5], [], []])

    def test_from_owned_edges(self):
        p = StrategyProfile.from_owned_edges(3, [(0, 1), (2, 1)])
        assert p.owned_edges() == [(0, 1), (2, 1)]

    def test_from_undirected_edges_owner_rules(self):
        low = StrategyProfile.from_undirected_edges(3, [(2, 0)], owner="low")
        high = StrategyProfile.from_undirected_edges(3, [(2, 0)], owner="high")
        assert low.owns_edge(0, 2)
        assert high.owns_edge(2, 0)

    def test_star_center_owns(self):
        p = StrategyProfile.star(4, center=1)
        assert p.strategy(1) == frozenset({0, 2, 3})
        assert p.num_edges() == 3

    def test_star_leaves_own(self):
        p = StrategyProfile.star(4, center=1, center_owns=False)
        assert p.strategy(1) == frozenset()
        assert all(p.owns_edge(v, 1) for v in (0, 2, 3))

    def test_star_center_out_of_range(self):
        with pytest.raises(ValueError):
            StrategyProfile.star(3, center=5)

    def test_complete(self):
        p = StrategyProfile.complete(4)
        assert p.num_edges() == 6
        assert p.double_bought_edges() == []

    def test_path(self):
        p = StrategyProfile.path([0, 2, 1], 4)
        assert p.edges() == [(0, 2), (1, 2)]
        assert p.owns_edge(0, 2)
        assert p.owns_edge(2, 1)

    def test_diagonal_ownership_rejected(self):
        owns = np.eye(3, dtype=bool)
        with pytest.raises(ValueError):
            StrategyProfile(owns)


class TestViews:
    def test_adjacency_is_symmetric_or(self):
        p = StrategyProfile.from_sets(3, [[1], [], [1]])
        adj = p.adjacency()
        assert adj[0, 1] and adj[1, 0]
        assert adj[2, 1] and adj[1, 2]
        assert not adj[0, 2]

    def test_double_bought_edges_detected(self):
        p = StrategyProfile.from_owned_edges(3, [(0, 1), (1, 0)])
        assert p.double_bought_edges() == [(0, 1)]
        assert p.num_edges() == 1
        assert p.num_owned_edges() == 2

    def test_num_owned_edges_per_agent(self):
        p = StrategyProfile.from_sets(4, [[1, 2, 3], [], [], []])
        assert p.num_owned_edges(0) == 3
        assert p.num_owned_edges(1) == 0

    def test_ownership_read_only(self):
        p = StrategyProfile.empty(3)
        with pytest.raises(ValueError):
            p.ownership[0, 1] = True

    def test_to_networkx(self):
        from repro.core.host_graph import HostGraph

        host = HostGraph.unit(3)
        p = StrategyProfile.star(3, center=0)
        g = p.to_networkx(host)
        assert g.number_of_edges() == 2
        assert g[0][1]["weight"] == 1.0


class TestEditing:
    def test_with_strategy_replaces(self):
        p = StrategyProfile.from_sets(3, [[1, 2], [], []])
        q = p.with_strategy(0, [2])
        assert q.strategy(0) == frozenset({2})
        assert p.strategy(0) == frozenset({1, 2})  # original untouched

    def test_add_delete_swap(self):
        p = StrategyProfile.empty(4)
        p1 = p.add_edge(0, 1)
        assert p1.owns_edge(0, 1)
        p2 = p1.swap_edge(0, 1, 3)
        assert not p2.owns_edge(0, 1)
        assert p2.owns_edge(0, 3)
        p3 = p2.delete_edge(0, 3)
        assert p3.num_edges() == 0

    def test_add_self_loop_rejected(self):
        with pytest.raises(ValueError):
            StrategyProfile.empty(3).add_edge(1, 1)

    def test_transfer_ownership(self):
        p = StrategyProfile.from_owned_edges(3, [(0, 1)])
        q = p.transfer_ownership(0, 1)
        assert q.owns_edge(1, 0)
        assert not q.owns_edge(0, 1)
        assert q.adjacency()[0, 1]

    def test_transfer_ownership_missing_edge(self):
        with pytest.raises(ValueError):
            StrategyProfile.empty(3).transfer_ownership(0, 1)


class TestIdentity:
    def test_equality_and_hash(self):
        a = StrategyProfile.from_sets(3, [[1], [2], []])
        b = StrategyProfile.from_sets(3, [[1], [2], []])
        c = StrategyProfile.from_sets(3, [[2], [], []])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_canonical_key_distinguishes_ownership(self):
        a = StrategyProfile.from_owned_edges(3, [(0, 1)])
        b = StrategyProfile.from_owned_edges(3, [(1, 0)])
        assert a.canonical_key() != b.canonical_key()
        assert a.network_key() == b.network_key()

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=8), seed=st.integers(0, 10_000))
    def test_roundtrip_through_sets(self, n, seed):
        rng = np.random.default_rng(seed)
        owns = rng.random((n, n)) < 0.4
        np.fill_diagonal(owns, False)
        p = StrategyProfile(owns)
        q = StrategyProfile.from_sets(n, [p.strategy(u) for u in range(n)])
        assert p == q

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=8), seed=st.integers(0, 10_000))
    def test_adjacency_consistency(self, n, seed):
        rng = np.random.default_rng(seed)
        owns = rng.random((n, n)) < 0.4
        np.fill_diagonal(owns, False)
        p = StrategyProfile(owns)
        adj = p.adjacency()
        assert np.array_equal(adj, adj.T)
        assert p.num_edges() == len(p.edges())
        for u, v in p.edges():
            assert u < v
            assert adj[u, v]
