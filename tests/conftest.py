"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.strategy import StrategyProfile


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_euclidean_game() -> NetworkCreationGame:
    """Five agents in the plane, alpha = 1 — the workhorse metric instance."""
    points = np.array(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [0.5, 0.5],
        ]
    )
    return NetworkCreationGame(HostGraph.from_points(points, p=2), alpha=1.0)


@pytest.fixture
def small_tree_game() -> NetworkCreationGame:
    """A five-node tree metric with alpha = 2."""
    edges = [(0, 1, 1.0), (1, 2, 2.0), (1, 3, 0.5), (3, 4, 1.5)]
    return NetworkCreationGame(HostGraph.from_tree(edges, 5), alpha=2.0)


@pytest.fixture
def one_two_game() -> NetworkCreationGame:
    """A six-node 1-2 host graph with alpha = 0.75."""
    one_edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]
    return NetworkCreationGame(HostGraph.one_two(one_edges, 6), alpha=0.75)


@pytest.fixture
def star_profile_5() -> StrategyProfile:
    return StrategyProfile.star(5, center=0)
