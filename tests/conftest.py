"""Shared fixtures and the fast/slow split for the test-suite.

The randomized property sweeps (``tests/test_incremental_engine.py`` and
friends) run with a small instance budget by default so the tier-1 command
(``PYTHONPATH=src python -m pytest -x -q``) stays fast.  Tests marked
``@pytest.mark.slow`` — and the larger budgets handed out by the
``property_budget`` fixture — are enabled with either ``--slow`` or an
``-m slow`` marker expression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.strategy import StrategyProfile


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--slow",
        action="store_true",
        default=False,
        help="run slow randomized sweeps and raise the property-test budgets",
    )


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long randomized sweep (enable with --slow or -m slow)"
    )


def _slow_enabled(config: pytest.Config) -> bool:
    if config.getoption("--slow"):
        return True
    # Slow mode is on when the -m expression selects `slow` positively
    # (`slow`, `slow and not x`, ...) but not when it negates it
    # (`not slow`) or never mentions it.
    tokens = (config.getoption("-m") or "").replace("(", " ").replace(")", " ").split()
    return any(
        tok == "slow" and (i == 0 or tokens[i - 1] != "not")
        for i, tok in enumerate(tokens)
    )


def pytest_collection_modifyitems(config: pytest.Config, items: list[pytest.Item]) -> None:
    if _slow_enabled(config):
        return
    skip_slow = pytest.mark.skip(reason="slow sweep: pass --slow (or -m slow) to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture
def property_budget(request: pytest.FixtureRequest) -> int:
    """Number of random instances per property sweep (larger under ``--slow``)."""
    return 40 if _slow_enabled(request.config) else 8


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_euclidean_game() -> NetworkCreationGame:
    """Five agents in the plane, alpha = 1 — the workhorse metric instance."""
    points = np.array(
        [
            [0.0, 0.0],
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [0.5, 0.5],
        ]
    )
    return NetworkCreationGame(HostGraph.from_points(points, p=2), alpha=1.0)


@pytest.fixture
def small_tree_game() -> NetworkCreationGame:
    """A five-node tree metric with alpha = 2."""
    edges = [(0, 1, 1.0), (1, 2, 2.0), (1, 3, 0.5), (3, 4, 1.5)]
    return NetworkCreationGame(HostGraph.from_tree(edges, 5), alpha=2.0)


@pytest.fixture
def one_two_game() -> NetworkCreationGame:
    """A six-node 1-2 host graph with alpha = 0.75."""
    one_edges = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]
    return NetworkCreationGame(HostGraph.one_two(one_edges, 6), alpha=0.75)


@pytest.fixture
def star_profile_5() -> StrategyProfile:
    return StrategyProfile.star(5, center=0)
