"""Cross-cutting property-based tests of the paper's structural invariants.

These tests tie several modules together: random instances are generated,
equilibria are found by dynamics, and the paper's lemmas/theorems are checked
as executable properties:

* Lemma 1  — equilibria are (alpha+1)-spanners of the host graph;
* Lemma 2  — social optima are (alpha/2+1)-spanners;
* Theorem 1 — NE cost / OPT cost <= (alpha+2)/2 on metric hosts;
* Theorem 20 — the same ratio is <= ((alpha+2)/2)^2 on arbitrary hosts;
* Theorem 12 — Nash equilibria of tree hosts are trees;
* Theorem 2 / 3 / Corollary 2 — the AE -> GE -> NE approximation chain;
* footnote 1 — equilibria never contain an edge bought by both endpoints.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    general_poa_upper,
    metric_poa_upper,
    ne_spanner_factor,
    opt_spanner_factor,
)
from repro.core.dynamics import best_response_dynamics
from repro.core.equilibria import is_nash_equilibrium
from repro.core.game import NetworkCreationGame
from repro.core.poa import sample_equilibria
from repro.core.social_optimum import exact_social_optimum
from repro.core.spanner import is_k_spanner
from repro.core.strategy import StrategyProfile
from repro.metrics.generators import (
    random_euclidean_host,
    random_general_host,
    random_one_two_host,
    random_tree_host,
)

_SETTINGS = dict(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _find_equilibrium(game):
    result = best_response_dynamics(game, StrategyProfile.empty(game.n), max_rounds=40)
    if not result.converged:
        return None
    profile = result.final_profile
    if not is_nash_equilibrium(game, profile):
        return None
    return profile


class TestSpannerInvariants:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.3, max_value=4.0))
    def test_lemma1_equilibria_are_spanners(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_euclidean_host(5, rng=rng), alpha)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        assert is_k_spanner(game.host, eq, ne_spanner_factor(alpha))

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.3, max_value=4.0))
    def test_lemma2_optima_are_spanners(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_euclidean_host(5, rng=rng), alpha)
        opt = exact_social_optimum(game)
        assert is_k_spanner(game.host, opt.profile, opt_spanner_factor(alpha))


class TestPriceOfAnarchyInvariants:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.3, max_value=4.0))
    def test_theorem1_metric_ratio_bound(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_euclidean_host(5, rng=rng), alpha)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        opt = exact_social_optimum(game)
        assert game.social_cost(eq) <= metric_poa_upper(alpha) * opt.cost + 1e-6

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.3, max_value=3.0))
    def test_theorem20_general_ratio_bound(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_general_host(5, rng=rng), alpha)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        opt = exact_social_optimum(game)
        assert game.social_cost(eq) <= general_poa_upper(alpha) * opt.cost + 1e-6

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.55, max_value=0.95))
    def test_theorem7_one_two_ratio_bound(self, seed, alpha):
        """For 1/2 <= alpha < 1 on 1-2 hosts the PoA is at most 3/(alpha+2)."""
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_one_two_host(5, rng=rng), alpha)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        opt = exact_social_optimum(game)
        assert game.social_cost(eq) <= (3.0 / (alpha + 2.0)) * opt.cost + 1e-6


class TestStructuralInvariants:
    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.5, max_value=4.0))
    def test_theorem12_tree_equilibria_are_trees(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_tree_host(6, rng=rng), alpha)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        assert eq.num_edges() == game.n - 1
        assert game.is_connected(eq)

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.3, max_value=4.0))
    def test_no_equilibrium_double_buys_edges(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_euclidean_host(5, rng=rng), alpha)
        equilibria = sample_equilibria(game, num_samples=2, rng=rng)
        for eq in equilibria:
            assert eq.double_bought_edges() == []

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000))
    def test_equilibria_of_connected_hosts_are_connected(self, seed):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_euclidean_host(5, rng=rng), alpha=1.0)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        assert game.is_connected(eq)

    @settings(**_SETTINGS)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.3, max_value=2.0))
    def test_optimum_cost_is_lower_bound_for_equilibria(self, seed, alpha):
        rng = np.random.default_rng(seed)
        game = NetworkCreationGame(random_euclidean_host(5, rng=rng), alpha)
        opt = exact_social_optimum(game)
        eq = _find_equilibrium(game)
        if eq is None:
            return
        assert game.social_cost(eq) >= opt.cost - 1e-9
