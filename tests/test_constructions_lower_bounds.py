"""Tests for the paper's lower-bound constructions (Thms. 8, 15, 18, 19, Lemma 8, Thm. 20)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constructions import (
    clique_of_stars_lower_bound,
    cross_polytope_lower_bound,
    geometric_path_star,
    theorem18_four_node_family,
    three_cycle_general_host,
    tree_star_lower_bound,
)
from repro.constructions.cross_polytope import cross_polytope_points
from repro.constructions.geometric_path_star import line_positions
from repro.constructions.tree_star_lower_bound import tree_star_claimed_ratio
from repro.core.bounds import (
    metric_poa_upper,
    rd_one_norm_poa_lower,
    rd_pnorm_poa_lower_4node,
)
from repro.core.equilibria import is_nash_equilibrium
from repro.core.host_graph import ModelVariant
from repro.core.social_optimum import exact_social_optimum


class TestTheorem15TreeStar:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 4.0])
    def test_equilibrium_is_nash(self, alpha):
        inst = tree_star_lower_bound(6, alpha)
        assert is_nash_equilibrium(inst.game, inst.equilibrium)

    @pytest.mark.parametrize("alpha", [1.0, 2.0])
    def test_optimum_is_exact(self, alpha):
        inst = tree_star_lower_bound(5, alpha)
        exact = exact_social_optimum(inst.game)
        assert inst.optimum_cost == pytest.approx(exact.cost)

    @pytest.mark.parametrize("n,alpha", [(5, 1.0), (7, 2.0), (9, 4.0)])
    def test_measured_ratio_matches_closed_form(self, n, alpha):
        inst = tree_star_lower_bound(n, alpha)
        assert inst.measured_ratio == pytest.approx(tree_star_claimed_ratio(n, alpha))

    def test_ratio_approaches_metric_bound(self):
        alpha = 3.0
        ratios = [tree_star_claimed_ratio(n, alpha) for n in (5, 20, 200, 2000)]
        assert all(b >= a for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] == pytest.approx(metric_poa_upper(alpha), rel=1e-2)
        assert all(r <= metric_poa_upper(alpha) + 1e-9 for r in ratios)

    def test_host_is_tree_metric(self):
        inst = tree_star_lower_bound(6, 3.0)
        assert inst.game.host.classify() is ModelVariant.TREE
        # at alpha = 2 the weights collapse to {1, 2}: still a tree metric, but
        # classified as the (more specific) 1-2 class
        inst2 = tree_star_lower_bound(6, 2.0)
        assert inst2.game.host.is_tree_metric()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            tree_star_lower_bound(2, 1.0)
        with pytest.raises(ValueError):
            tree_star_lower_bound(5, 0.0)


class TestTheorem19CrossPolytope:
    @pytest.mark.parametrize("d,alpha", [(2, 1.0), (2, 2.0), (3, 2.0)])
    def test_equilibrium_is_nash(self, d, alpha):
        inst = cross_polytope_lower_bound(d, alpha)
        assert is_nash_equilibrium(inst.game, inst.equilibrium)

    @pytest.mark.parametrize("d,alpha", [(2, 1.0), (3, 2.5), (4, 0.7)])
    def test_ratio_matches_theorem19_formula(self, d, alpha):
        inst = cross_polytope_lower_bound(d, alpha)
        assert inst.measured_ratio == pytest.approx(rd_one_norm_poa_lower(alpha, d))

    def test_number_of_points(self):
        for d in (1, 2, 5):
            assert cross_polytope_points(d, 2.0).shape == (2 * d + 1, d)

    def test_optimum_is_exact_small(self):
        inst = cross_polytope_lower_bound(2, 2.0)
        exact = exact_social_optimum(inst.game)
        assert inst.optimum_cost == pytest.approx(exact.cost)

    def test_ratio_below_metric_upper_bound(self):
        for d, alpha in ((2, 1.0), (3, 5.0), (5, 2.0)):
            inst = cross_polytope_lower_bound(d, alpha)
            assert inst.measured_ratio <= metric_poa_upper(alpha) + 1e-9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cross_polytope_lower_bound(0, 1.0)
        with pytest.raises(ValueError):
            cross_polytope_lower_bound(2, -1.0)


class TestLemma8AndTheorem18:
    def test_positions_are_geometric(self):
        pos = line_positions(5, 2.0)
        # consecutive gaps grow by the factor (1 + 2/alpha) = 2
        gaps = np.diff(pos)
        assert gaps[0] == pytest.approx(1.0)
        assert gaps[2] / gaps[1] == pytest.approx(2.0)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 3.0])
    def test_star_is_nash(self, alpha):
        inst = geometric_path_star(5, alpha)
        assert is_nash_equilibrium(inst.game, inst.equilibrium)

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 3.0])
    def test_path_is_exact_optimum(self, alpha):
        inst = geometric_path_star(5, alpha)
        exact = exact_social_optimum(inst.game)
        assert inst.optimum_cost == pytest.approx(exact.cost)

    def test_lemma8_ratio_strictly_above_one(self):
        for alpha in (0.5, 1.0, 4.0):
            inst = geometric_path_star(6, alpha)
            assert inst.measured_ratio > 1.0

    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 10.0])
    def test_theorem18_ratio_formula(self, alpha):
        inst = theorem18_four_node_family(alpha)
        assert inst.measured_ratio == pytest.approx(rd_pnorm_poa_lower_4node(alpha))
        assert is_nash_equilibrium(inst.game, inst.equilibrium)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            geometric_path_star(1, 1.0)
        with pytest.raises(ValueError):
            geometric_path_star(4, -2.0)


class TestTheorem8CliqueOfStars:
    def test_alpha_one_flavour(self):
        inst = clique_of_stars_lower_bound(2, 1.0)
        assert inst.game.host.classify() is ModelVariant.ONE_TWO
        assert is_nash_equilibrium(inst.game, inst.equilibrium)
        assert inst.optimum_is_exact
        assert 1.0 < inst.measured_ratio <= 1.5 + 1e-9

    def test_small_alpha_flavour(self):
        inst = clique_of_stars_lower_bound(2, 0.6)
        assert is_nash_equilibrium(inst.game, inst.equilibrium)
        # the claimed asymptotic ratio is 3/(alpha+2)
        assert inst.claimed_ratio == pytest.approx(3.0 / 2.6)

    def test_node_count(self):
        from repro.constructions.one_two_lower_bound import clique_of_stars_node_layout

        layout = clique_of_stars_node_layout(3)
        assert layout["n"] == 13
        assert len(layout["clique"]) == 3
        assert len(layout["leaves"]) == 3
        inst = clique_of_stars_lower_bound(3, 1.0)
        assert inst.game.n == 13

    def test_ratio_grows_with_gadget_size(self):
        small = clique_of_stars_lower_bound(2, 1.0).measured_ratio
        large = clique_of_stars_lower_bound(3, 1.0).measured_ratio
        assert large > small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            clique_of_stars_lower_bound(1, 1.0)
        with pytest.raises(ValueError):
            clique_of_stars_lower_bound(2, 2.0)


class TestTheorem20Remark:
    @pytest.mark.parametrize("alpha", [1.0, 2.0, 5.0])
    def test_equilibrium_and_ratio(self, alpha):
        inst = three_cycle_general_host(alpha)
        assert is_nash_equilibrium(inst.game, inst.equilibrium)
        # the instance's overall PoA matches the metric bound, not its square
        assert inst.measured_ratio == pytest.approx(metric_poa_upper(alpha))

    def test_host_is_non_metric(self):
        inst = three_cycle_general_host(2.0)
        assert inst.game.host.classify() is ModelVariant.GENERAL

    def test_per_pair_sigma_achieves_squared_bound(self):
        """The heavy pair's per-pair cost ratio equals ((alpha+2)/2)^2 (Thm. 20 remark)."""
        alpha = 2.0
        inst = three_cycle_general_host(alpha)
        game = inst.game
        d_ne = game.distances(inst.equilibrium)
        d_opt = game.distances(inst.optimum)
        heavy = (0, 2)
        w = game.host.weight(*heavy)
        x = 1.0 if inst.equilibrium.has_edge(*heavy) else 0.0
        x_star = 1.0 if inst.optimum.has_edge(*heavy) else 0.0
        sigma = (alpha * w * x + 2 * d_ne[heavy]) / (alpha * w * x_star + 2 * d_opt[heavy])
        assert sigma == pytest.approx(((alpha + 2.0) / 2.0) ** 2)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            three_cycle_general_host(0.0)
