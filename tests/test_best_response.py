"""Tests for exact and greedy best-response computation."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.best_response import (
    best_response,
    best_response_exact,
    best_single_move,
    enumerate_single_moves,
    greedy_response,
    residual_distances,
    strategy_cost_given_residual,
)
from repro.core.game import NetworkCreationGame
from repro.core.host_graph import HostGraph
from repro.core.strategy import StrategyProfile


def brute_force_best_response(game, profile, u):
    """Reference implementation: try every subset by rebuilding the profile."""
    others = [v for v in range(game.n) if v != u and np.isfinite(game.host.weights[u, v])]
    best_cost = np.inf
    best_set = frozenset()
    for r in range(len(others) + 1):
        for combo in itertools.combinations(others, r):
            candidate = profile.with_strategy(u, combo)
            cost = game.agent_cost(candidate, u)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_set = frozenset(combo)
    return best_set, best_cost


class TestResidualDistances:
    def test_residual_removes_only_owned_edges(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.from_sets(5, [[1, 2], [3], [], [], []])
        d_rest = residual_distances(game, profile, 0)
        # edges (0,1),(0,2) removed but (1,3) stays
        w13 = game.host.weight(1, 3)
        assert d_rest[1, 3] == pytest.approx(w13)
        assert np.isinf(d_rest[0, 1]) or d_rest[0, 1] > game.host.weight(0, 1)

    def test_residual_keeps_edges_bought_towards_agent(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.from_sets(5, [[1], [], [0], [], []])
        d_rest = residual_distances(game, profile, 0)
        # (2,0) is owned by 2 and must remain
        assert d_rest[0, 2] == pytest.approx(game.host.weight(0, 2))

    def test_strategy_cost_given_residual_matches_game(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.from_sets(5, [[1], [2], [3], [4], []])
        for u in range(5):
            d_rest = residual_distances(game, profile, u)
            current = set(profile.strategy(u))
            cost = strategy_cost_given_residual(game, d_rest, u, current)
            assert cost == pytest.approx(game.agent_cost(profile, u))

    def test_strategy_cost_rejects_self(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.empty(5)
        d_rest = residual_distances(game, profile, 0)
        with pytest.raises(ValueError):
            strategy_cost_given_residual(game, d_rest, 0, {0})


class TestExactBestResponse:
    @pytest.mark.parametrize("agent", [0, 2, 4])
    def test_matches_brute_force_euclidean(self, small_euclidean_game, agent):
        game = small_euclidean_game
        profile = StrategyProfile.from_sets(5, [[1], [2], [3], [], [0]])
        expected_set, expected_cost = brute_force_best_response(game, profile, agent)
        result = best_response_exact(game, profile, agent)
        assert result.cost == pytest.approx(expected_cost)
        # Tie-broken strategies may differ; the cost achieved must be identical.
        realized = game.agent_cost(profile.with_strategy(agent, result.strategy), agent)
        assert realized == pytest.approx(expected_cost)

    @pytest.mark.parametrize("agent", [0, 1, 3])
    def test_matches_brute_force_tree(self, small_tree_game, agent):
        game = small_tree_game
        profile = StrategyProfile.from_sets(5, [[], [0, 2], [], [4], []])
        expected_set, expected_cost = brute_force_best_response(game, profile, agent)
        result = best_response_exact(game, profile, agent)
        assert result.cost == pytest.approx(expected_cost)

    def test_improvement_non_negative(self, small_euclidean_game, rng):
        game = small_euclidean_game
        owns = np.triu(rng.random((5, 5)) < 0.5, k=1)
        profile = StrategyProfile(owns)
        for u in range(5):
            result = best_response_exact(game, profile, u)
            assert result.improvement >= -1e-9

    def test_disconnected_agent_buys_something(self):
        game = NetworkCreationGame(HostGraph.unit(4), alpha=1.0)
        profile = StrategyProfile.from_sets(4, [[], [2], [3], []])
        result = best_response_exact(game, profile, 0)
        assert result.strategy  # must buy at least one edge to connect
        assert np.isfinite(result.cost)

    def test_infinite_host_edges_excluded(self):
        host = HostGraph.one_infinity([(0, 1), (1, 2), (2, 3)], 4)
        game = NetworkCreationGame(host, alpha=1.0)
        profile = StrategyProfile.empty(4)
        result = best_response_exact(game, profile, 0)
        assert all(game.host.weight(0, v) < np.inf for v in result.strategy)

    def test_candidate_restriction(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.empty(5)
        result = best_response_exact(game, profile, 0, candidates=[1, 2])
        assert result.strategy <= {1, 2}

    def test_max_candidates_guard(self):
        game = NetworkCreationGame(HostGraph.unit(6), alpha=1.0)
        with pytest.raises(ValueError):
            best_response_exact(game, StrategyProfile.empty(6), 0, max_candidates=3)

    def test_empty_candidate_list(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.from_sets(5, [[], [0, 2, 3, 4], [], [], []])
        result = best_response_exact(game, profile, 0, candidates=[])
        assert result.strategy == frozenset()


class TestSingleMovesAndGreedy:
    def test_enumerate_single_moves_gains(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.star(5, center=0)
        moves = enumerate_single_moves(game, profile, 0)
        current_cost = game.agent_cost(profile, 0)
        for mv in moves:
            applied = mv.apply(profile, 0)
            assert game.agent_cost(applied, 0) == pytest.approx(current_cost - mv.gain)

    def test_best_single_move_none_at_equilibrium(self, small_tree_game):
        game = small_tree_game
        from repro.core.equilibria import tree_profile_from_host

        tree = tree_profile_from_host(game)
        for u in range(game.n):
            assert best_single_move(game, tree, u).kind == "none"

    def test_best_single_move_add_when_disconnected(self):
        game = NetworkCreationGame(HostGraph.unit(3), alpha=1.0)
        profile = StrategyProfile.from_sets(3, [[], [2], []])
        move = best_single_move(game, profile, 0)
        assert move.kind == "add"

    def test_greedy_never_worse_than_current(self, small_euclidean_game, rng):
        game = small_euclidean_game
        owns = np.triu(rng.random((5, 5)) < 0.5, k=1)
        profile = StrategyProfile(owns)
        for u in range(5):
            result = greedy_response(game, profile, u)
            assert result.cost <= game.agent_cost(profile, u) + 1e-9

    def test_greedy_upper_bounds_exact(self, small_euclidean_game, rng):
        game = small_euclidean_game
        owns = np.triu(rng.random((5, 5)) < 0.4, k=1)
        profile = StrategyProfile(owns)
        for u in range(5):
            exact = best_response_exact(game, profile, u)
            greedy = greedy_response(game, profile, u)
            assert greedy.cost >= exact.cost - 1e-9

    def test_single_move_dataclass_apply_none(self, small_euclidean_game):
        from repro.core.best_response import SingleMove

        profile = StrategyProfile.empty(5)
        assert SingleMove("none").apply(profile, 0) is profile


class TestDispatch:
    def test_method_auto_small_uses_exact(self, small_euclidean_game):
        game = small_euclidean_game
        profile = StrategyProfile.empty(5)
        result = best_response(game, profile, 0, method="auto")
        assert result.method == "exact"

    def test_method_greedy(self, small_euclidean_game):
        result = best_response(
            small_euclidean_game, StrategyProfile.empty(5), 0, method="greedy"
        )
        assert result.method == "greedy"

    def test_unknown_method(self, small_euclidean_game):
        with pytest.raises(ValueError):
            best_response(small_euclidean_game, StrategyProfile.empty(5), 0, method="bogus")


class TestBestResponseProperties:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), alpha=st.floats(min_value=0.2, max_value=4.0))
    def test_exact_best_response_is_optimal(self, seed, alpha):
        """Property: the vectorized subset enumeration equals naive re-evaluation."""
        rng = np.random.default_rng(seed)
        host = HostGraph.from_points(rng.random((5, 2)))
        game = NetworkCreationGame(host, alpha)
        owns = np.triu(rng.random((5, 5)) < 0.5, k=1)
        profile = StrategyProfile(owns)
        agent = int(rng.integers(0, 5))
        _, expected_cost = brute_force_best_response(game, profile, agent)
        result = best_response_exact(game, profile, agent)
        assert result.cost == pytest.approx(expected_cost)
